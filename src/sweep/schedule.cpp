#include "sweep/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/assert.hpp"

namespace unsnap::sweep {

int SweepSchedule::lag_slot(int e, int f) const {
  const int key = e * fem::kFacesPerHex + f;
  const auto it = std::lower_bound(
      lag_slots_.begin(), lag_slots_.end(), key,
      [](const std::pair<int, int>& entry, int k) { return entry.first < k; });
  UNSNAP_ASSERT(it != lag_slots_.end() && it->first == key);
  return it->second;
}

int SweepSchedule::max_bucket_size() const {
  int best = 0;
  for (int b = 0; b < num_buckets(); ++b)
    best = std::max(best, static_cast<int>(bucket(b).size()));
  return best;
}

SweepSchedule build_schedule(const mesh::HexMesh& mesh,
                             const AngleDependency& dep,
                             CycleStrategy strategy) {
  const int ne = mesh.num_elements();
  SweepSchedule schedule;
  schedule.order_.reserve(static_cast<std::size_t>(ne));
  schedule.bucket_start_.push_back(0);

  std::vector<std::uint8_t> unsatisfied(dep.interior_incoming_count);
  std::vector<char> scheduled(static_cast<std::size_t>(ne), 0);
  int remaining = ne;

  // Grazing faces incoming on both sides carry no dependency (they are
  // excluded from the counters); record them so the kernel reads vacuum
  // instead of racing on the neighbour's live flux.
  for (int e = 0; e < ne; ++e)
    for (int f = 0; f < fem::kFacesPerHex; ++f) {
      if (!dep.is_incoming(e, f)) continue;
      if (mesh.neighbor(e, f) == mesh::kNoNeighbor) continue;
      if (is_dependency_edge(mesh, dep, e, f)) continue;
      if (schedule.phantom_mask_.empty())
        schedule.phantom_mask_.assign(static_cast<std::size_t>(ne), 0);
      schedule.phantom_mask_[e] |= static_cast<std::uint8_t>(1u << f);
    }

  if (strategy == CycleStrategy::LagScc) {
    // Condense the dependency graph up front: after break_cycles_scc the
    // graph is acyclic, so the Kahn construction below can never stall.
    schedule.lagged_faces_ =
        break_cycles_scc(mesh, dep, schedule.lagged_mask_);
    if (schedule.lagged_faces_.empty()) schedule.lagged_mask_.clear();
    for (const auto& [e, f] : schedule.lagged_faces_) --unsatisfied[e];
  }

  // Seed bucket: everything fed entirely by boundary/remote/lagged faces.
  std::vector<int> current;
  for (int e = 0; e < ne; ++e)
    if (unsatisfied[e] == 0) current.push_back(e);

  std::vector<int> next;
  while (remaining > 0) {
    if (current.empty()) {
      // Cycle: no element is fully satisfied.
      UNSNAP_ASSERT(strategy != CycleStrategy::LagScc);
      if (strategy == CycleStrategy::Abort)
        throw NumericalError(
            "sweep schedule: cyclic dependency detected (twist too large?); "
            "choose a cycle-breaking strategy (lag-greedy or lag-scc) to lag "
            "the offending faces");
      // LagGreedy: lag the incoming interior face with the smallest area
      // among all stuck elements, then retry. Lagged faces read
      // previous-iterate flux, so the sweep stays well defined. The strict
      // `<` on an ascending (element, face) scan breaks ties on the lowest
      // (element, face) pair — schedules are bit-reproducible.
      int best_e = -1, best_f = -1;
      double best_flow = 0.0;
      for (int e = 0; e < ne; ++e) {
        if (scheduled[e] || unsatisfied[e] == 0) continue;
        for (int f = 0; f < fem::kFacesPerHex; ++f) {
          // Only faces counted as dependencies are candidates.
          if (!is_dependency_edge(mesh, dep, e, f)) continue;
          const int nbr = mesh.neighbor(e, f);
          if (scheduled[nbr]) continue;
          if (schedule.face_is_lagged(e, f)) continue;
          const Vec3 n = mesh.face_area_normal(e, f);
          const double flow = std::sqrt(fem::dot(n, n));
          if (best_e < 0 || flow < best_flow) {
            best_e = e;
            best_f = f;
            best_flow = flow;
          }
        }
      }
      UNSNAP_ASSERT(best_e >= 0);
      if (schedule.lagged_mask_.empty())
        schedule.lagged_mask_.assign(static_cast<std::size_t>(ne), 0);
      schedule.lagged_mask_[best_e] |=
          static_cast<std::uint8_t>(1u << best_f);
      schedule.lagged_faces_.emplace_back(best_e, best_f);
      --unsatisfied[best_e];
      if (unsatisfied[best_e] == 0) current.push_back(best_e);
      continue;
    }

    // Emit the bucket and relax downwind counters.
    next.clear();
    for (const int e : current) {
      scheduled[e] = 1;
      schedule.order_.push_back(e);
    }
    remaining -= static_cast<int>(current.size());
    schedule.bucket_start_.push_back(
        static_cast<int>(schedule.order_.size()));
    for (const int e : current) {
      for (int f = 0; f < fem::kFacesPerHex; ++f) {
        if (dep.is_incoming(e, f)) continue;  // outgoing faces only
        const int nbr = mesh.neighbor(e, f);
        if (nbr == mesh::kNoNeighbor || scheduled[nbr]) continue;
        // My outgoing face feeds the neighbour only through a genuine
        // dependency edge as seen from the neighbour's side.
        const int nbr_face = mesh.neighbor_face(e, f);
        if (!is_dependency_edge(mesh, dep, nbr, nbr_face)) continue;
        if (schedule.face_is_lagged(nbr, nbr_face)) continue;
        UNSNAP_ASSERT(unsatisfied[nbr] > 0);
        if (--unsatisfied[nbr] == 0) next.push_back(nbr);
      }
    }
    current.swap(next);
  }

  // Freeze the lagged-face -> snapshot-slot lookup.
  schedule.lag_slots_.reserve(schedule.lagged_faces_.size());
  for (std::size_t slot = 0; slot < schedule.lagged_faces_.size(); ++slot) {
    const auto& [e, f] = schedule.lagged_faces_[slot];
    schedule.lag_slots_.emplace_back(e * fem::kFacesPerHex + f,
                                     static_cast<int>(slot));
  }
  std::sort(schedule.lag_slots_.begin(), schedule.lag_slots_.end());
  return schedule;
}

ScheduleSet::ScheduleSet(const mesh::HexMesh& mesh,
                         const angular::QuadratureSet& quadrature,
                         CycleStrategy strategy)
    : per_octant_(quadrature.per_octant()), strategy_(strategy) {
  const int total = quadrature.total_angles();
  index_.resize(static_cast<std::size_t>(total));
  batches_.resize(angular::kOctants);

  // Dedup by the incoming-mask signature: identical masks => identical
  // dependency graph => identical schedule (the SCC breaker ranks faces by
  // the first matching angle's omega, but any lag set that makes the
  // shared graph acyclic is valid for every angle with that signature).
  std::map<std::vector<std::uint8_t>, int> seen;
  for (int oct = 0; oct < angular::kOctants; ++oct) {
    std::map<int, std::size_t> batch_of;  // schedule id -> batch position
    for (int a = 0; a < per_octant_; ++a) {
      const AngleDependency dep =
          build_dependency(mesh, quadrature.direction(oct, a));
      const auto [it, inserted] = seen.try_emplace(
          dep.incoming_mask, static_cast<int>(schedules_.size()));
      if (inserted) schedules_.push_back(build_schedule(mesh, dep, strategy));
      index_[static_cast<std::size_t>(oct) * per_octant_ + a] = it->second;

      auto& batches = batches_[static_cast<std::size_t>(oct)];
      const auto [bit, fresh] =
          batch_of.try_emplace(it->second, batches.size());
      if (fresh) batches.emplace_back();
      batches[bit->second].push_back(a);
    }
  }
}

ScheduleStats schedule_stats(const SweepSchedule& schedule) {
  ScheduleStats stats;
  stats.buckets = schedule.num_buckets();
  stats.lagged = static_cast<int>(schedule.lagged_faces().size());
  if (stats.buckets == 0) return stats;
  stats.min_bucket = static_cast<int>(schedule.bucket(0).size());
  for (int b = 0; b < stats.buckets; ++b) {
    const int size = static_cast<int>(schedule.bucket(b).size());
    stats.min_bucket = std::min(stats.min_bucket, size);
    stats.max_bucket = std::max(stats.max_bucket, size);
    stats.mean_bucket += size;
  }
  stats.mean_bucket /= stats.buckets;
  return stats;
}

ScheduleSetStats schedule_set_stats(const ScheduleSet& set, int threads) {
  ScheduleSetStats stats;
  stats.unique = set.unique_count();
  if (stats.unique == 0) return stats;
  threads = std::max(threads, 1);

  double bucket_sum = 0.0;
  long bucket_count = 0;
  double efficiency_sum = 0.0;
  for (int s = 0; s < stats.unique; ++s) {
    const SweepSchedule& schedule = set.unique_schedule(s);
    const ScheduleStats one = schedule_stats(schedule);
    stats.total_lagged += one.lagged;
    stats.max_bucket = std::max(stats.max_bucket, one.max_bucket);
    if (s == 0) {
      stats.min_buckets = stats.max_buckets = one.buckets;
    } else {
      stats.min_buckets = std::min(stats.min_buckets, one.buckets);
      stats.max_buckets = std::max(stats.max_buckets, one.buckets);
    }
    bucket_sum += one.mean_bucket * one.buckets;
    bucket_count += one.buckets;

    // Modelled bucket-parallel execution: each bucket costs
    // ceil(size / threads) rounds of `threads` lanes.
    long rounds = 0;
    for (int b = 0; b < schedule.num_buckets(); ++b)
      rounds += (static_cast<long>(schedule.bucket(b).size()) + threads - 1) /
                threads;
    if (rounds > 0)
      efficiency_sum += static_cast<double>(schedule.num_elements()) /
                        (static_cast<double>(threads) * rounds);
  }
  if (bucket_count > 0) stats.mean_bucket = bucket_sum / bucket_count;
  stats.parallel_efficiency = efficiency_sum / stats.unique;
  return stats;
}

}  // namespace unsnap::sweep
