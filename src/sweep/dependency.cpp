#include "sweep/dependency.hpp"

namespace unsnap::sweep {

AngleDependency build_dependency(const mesh::HexMesh& mesh,
                                 const Vec3& omega) {
  const int ne = mesh.num_elements();
  AngleDependency dep;
  dep.omega = omega;
  dep.incoming_mask.assign(static_cast<std::size_t>(ne), 0);
  dep.interior_incoming_count.assign(static_cast<std::size_t>(ne), 0);

  for (int e = 0; e < ne; ++e) {
    std::uint8_t mask = 0;
    for (int f = 0; f < fem::kFacesPerHex; ++f) {
      const double s = fem::dot(mesh.face_area_normal(e, f), omega);
      if (s < 0.0) mask |= static_cast<std::uint8_t>(1u << f);
    }
    dep.incoming_mask[e] = mask;
  }

  // Count interior dependencies under the shared edge rule (see
  // is_dependency_edge): counting a face the relaxation can never satisfy
  // would wedge the schedule construction.
  for (int e = 0; e < ne; ++e) {
    std::uint8_t interior = 0;
    for (int f = 0; f < fem::kFacesPerHex; ++f)
      if (is_dependency_edge(mesh, dep, e, f)) ++interior;
    dep.interior_incoming_count[e] = interior;
  }
  return dep;
}

}  // namespace unsnap::sweep
