#pragma once

#include <cstdint>
#include <vector>

#include "fem/geometry.hpp"
#include "mesh/hex_mesh.hpp"

namespace unsnap::sweep {

using fem::Vec3;

/// Upwind structure of one ordinate on the mesh: for every element, which
/// local faces receive particles (incoming) under direction omega. A face
/// is incoming when the area-averaged outward normal satisfies
/// n . omega < 0 — the same face-level classification the assembly kernel
/// branches on. (The kernel recomputes the normal with the element's
/// full-order quadrature while the mesh uses the exact 2x2 rule; the two
/// are bitwise equal at order 1 and agree to rounding above, so a
/// disagreement needs n . omega within an ulp of zero — a face whose flow
/// contribution is itself ~zero. The both-incoming grazing case, the one
/// such corner that can wedge scheduling, is excluded from the dependency
/// graph by is_dependency_edge and masked to vacuum by the schedule's
/// phantom-face mask.)
struct AngleDependency {
  /// The ordinate this dependency structure was built for (the SCC cycle
  /// breaker ranks candidate faces by upwind flow |n . omega|).
  Vec3 omega{0.0, 0.0, 0.0};
  /// Bit f set => local face f is incoming.
  std::vector<std::uint8_t> incoming_mask;
  /// Number of incoming faces with an *interior* neighbour (boundary and
  /// remote faces are satisfied before the sweep starts).
  std::vector<std::uint8_t> interior_incoming_count;

  [[nodiscard]] bool is_incoming(int e, int f) const {
    return (incoming_mask[e] >> f) & 1u;
  }
  [[nodiscard]] int num_elements() const {
    return static_cast<int>(incoming_mask.size());
  }
};

[[nodiscard]] AngleDependency build_dependency(const mesh::HexMesh& mesh,
                                               const Vec3& omega);

/// THE dependency-edge rule, downstream view: interior face (e, f) carries
/// a sweep dependency iff it is incoming on e and outgoing on the upstream
/// side. Grazing faces can classify as incoming on both sides within
/// rounding — those are NOT edges (they carry ~zero flow and nothing ever
/// satisfies them). Single source of truth for the dependency counters,
/// the Kahn relaxation, the SCC successor graph and both cycle breakers;
/// divergent copies of this rule wedge the schedule construction.
[[nodiscard]] inline bool is_dependency_edge(const mesh::HexMesh& mesh,
                                             const AngleDependency& dep,
                                             int e, int f) {
  if (!dep.is_incoming(e, f)) return false;
  const int nbr = mesh.neighbor(e, f);
  if (nbr == mesh::kNoNeighbor) return false;
  return !dep.is_incoming(nbr, mesh.neighbor_face(e, f));
}

}  // namespace unsnap::sweep
