#pragma once

#include <cstdint>
#include <vector>

#include "fem/geometry.hpp"
#include "mesh/hex_mesh.hpp"

namespace unsnap::sweep {

using fem::Vec3;

/// Upwind structure of one ordinate on the mesh: for every element, which
/// local faces receive particles (incoming) under direction omega. A face
/// is incoming when the area-averaged outward normal satisfies
/// n . omega < 0 — the same face-level classification the assembly kernel
/// branches on, so the schedule and the kernel can never disagree.
struct AngleDependency {
  /// Bit f set => local face f is incoming.
  std::vector<std::uint8_t> incoming_mask;
  /// Number of incoming faces with an *interior* neighbour (boundary and
  /// remote faces are satisfied before the sweep starts).
  std::vector<std::uint8_t> interior_incoming_count;

  [[nodiscard]] bool is_incoming(int e, int f) const {
    return (incoming_mask[e] >> f) & 1u;
  }
  [[nodiscard]] int num_elements() const {
    return static_cast<int>(incoming_mask.size());
  }
};

[[nodiscard]] AngleDependency build_dependency(const mesh::HexMesh& mesh,
                                               const Vec3& omega);

}  // namespace unsnap::sweep
