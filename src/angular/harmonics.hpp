#pragma once

#include <vector>

#include "angular/quadrature.hpp"

namespace unsnap::angular {

/// Real spherical harmonics up to order L in Racah (Schmidt
/// semi-normalised) convention: Y_00 = 1 and the average of Y_lm^2 over
/// the unit sphere is 1/(2l+1). With the quadrature weights summing to 1
/// this makes the moment algebra of anisotropic scattering particularly
/// clean (SNAP's nmom feature):
///
///   flux moments    phi_lm = sum_a w_a Y_lm(Omega_a) psi_a
///   source          q(Omega) = sum_l sigma_l sum_m (2l+1) Y_lm(Omega) phi_lm
///
/// so the l = 0 terms reduce exactly to the isotropic code path.
class SphericalHarmonics {
 public:
  /// `order` is the largest l (SNAP's nmom - 1). count() = (order+1)^2.
  explicit SphericalHarmonics(int order);

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] int count() const { return (order_ + 1) * (order_ + 1); }

  /// Flat index of (l, m), m in [-l, l]: l^2 + l + m.
  [[nodiscard]] static constexpr int index(int l, int m) {
    return l * l + l + m;
  }
  /// Degree l of a flat index.
  [[nodiscard]] int l_of(int idx) const { return l_of_[idx]; }
  /// Degree l of a flat index without an instance.
  [[nodiscard]] static constexpr int degree_of(int idx) {
    int l = 0;
    while ((l + 1) * (l + 1) <= idx) ++l;
    return l;
  }

  /// Evaluate every moment function at the unit direction omega;
  /// `out` must hold count() values.
  void evaluate(const Vec3& omega, double* out) const;

 private:
  int order_;
  std::vector<int> l_of_;
};

}  // namespace unsnap::angular
