#include "angular/quadrature.hpp"

#include <cmath>
#include <numbers>

#include "fem/quadrature1d.hpp"
#include "util/assert.hpp"

namespace unsnap::angular {

std::string to_string(QuadratureKind kind) {
  return kind == QuadratureKind::SnapLike ? "snap" : "product";
}

QuadratureKind quadrature_from_string(const std::string& name) {
  if (name == "snap") return QuadratureKind::SnapLike;
  if (name == "product") return QuadratureKind::Product;
  throw InvalidInput("unknown quadrature '" + name +
                     "' (expected snap or product)");
}

namespace {

constexpr double kHalfPi = std::numbers::pi / 2.0;

// SNAP-style artificial set: polar cosines equally spaced in (0,1) exactly
// as SNAP computes mu, azimuths spread with the golden-ratio sequence so
// each ordinate gets a distinct direction (and hence potentially a distinct
// sweep schedule on a twisted mesh). Equal weights, 1/(8*n) each.
void make_snap_like(int n, std::vector<Vec3>& dirs,
                    std::vector<double>& weights) {
  constexpr double kGolden = 0.6180339887498949;
  const double dm = 1.0 / n;
  for (int a = 0; a < n; ++a) {
    const double mu = dm * (0.5 + a);  // SNAP: mu(1) = dm/2, step dm
    const double sin_theta = std::sqrt(1.0 - mu * mu);
    const double frac = std::fmod((a + 0.5) * kGolden, 1.0);
    const double phi = kHalfPi * frac;
    dirs.push_back({mu, sin_theta * std::cos(phi), sin_theta * std::sin(phi)});
    weights.push_back(0.125 / n);
  }
}

// Product rule: Gauss-Legendre in the z-cosine on (0,1), equally weighted
// Chebyshev-style azimuths. n must factor as npolar * nazim with npolar the
// largest divisor <= sqrt(n).
void make_product(int n, std::vector<Vec3>& dirs,
                  std::vector<double>& weights) {
  int npolar = static_cast<int>(std::sqrt(static_cast<double>(n)));
  while (npolar > 1 && n % npolar != 0) --npolar;
  require(npolar >= 1, "product quadrature: invalid angle count");
  const int nazim = n / npolar;

  const fem::Quadrature1D polar = fem::gauss_legendre(npolar);
  for (int i = 0; i < npolar; ++i) {
    const double xi = 0.5 * (polar.points[i] + 1.0);   // cos(theta) in (0,1)
    const double wp = 0.5 * polar.weights[i];           // sums to 1
    const double sin_theta = std::sqrt(1.0 - xi * xi);
    for (int j = 0; j < nazim; ++j) {
      const double phi = kHalfPi * (j + 0.5) / nazim;
      dirs.push_back({sin_theta * std::cos(phi), sin_theta * std::sin(phi),
                      xi});
      weights.push_back(0.125 * wp / nazim);
    }
  }
}

}  // namespace

QuadratureSet::QuadratureSet(QuadratureKind kind, int per_octant)
    : kind_(kind) {
  require(per_octant >= 1, "quadrature: need at least one angle per octant");
  base_.reserve(per_octant);
  weights_.reserve(per_octant);
  if (kind == QuadratureKind::SnapLike)
    make_snap_like(per_octant, base_, weights_);
  else
    make_product(per_octant, base_, weights_);
  UNSNAP_ASSERT(static_cast<int>(base_.size()) == per_octant);
}

}  // namespace unsnap::angular
