#include "angular/harmonics.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace unsnap::angular {

SphericalHarmonics::SphericalHarmonics(int order) : order_(order) {
  require(order >= 0 && order <= 10,
          "SphericalHarmonics: order must be in 0..10");
  l_of_.resize(static_cast<std::size_t>(count()));
  for (int l = 0; l <= order_; ++l)
    for (int m = -l; m <= l; ++m) l_of_[index(l, m)] = l;
}

void SphericalHarmonics::evaluate(const Vec3& omega, double* out) const {
  const int lmax = order_;
  const double z = omega[2];  // cos(theta)
  const double s2 = std::max(0.0, 1.0 - z * z);
  const double sin_theta = std::sqrt(s2);

  // Associated Legendre P_l^m(z) without the Condon-Shortley phase,
  // stored compactly: plm[l][m] for m >= 0.
  std::vector<std::vector<double>> plm(static_cast<std::size_t>(lmax + 1));
  for (int l = 0; l <= lmax; ++l)
    plm[l].assign(static_cast<std::size_t>(l + 1), 0.0);
  plm[0][0] = 1.0;
  for (int m = 1; m <= lmax; ++m)
    plm[m][m] = plm[m - 1][m - 1] * (2 * m - 1) * sin_theta;
  for (int m = 0; m < lmax; ++m)
    plm[m + 1][m] = z * (2 * m + 1) * plm[m][m];
  for (int m = 0; m <= lmax; ++m)
    for (int l = m + 2; l <= lmax; ++l)
      plm[l][m] = ((2 * l - 1) * z * plm[l - 1][m] -
                   (l + m - 1) * plm[l - 2][m]) /
                  (l - m);

  // Azimuthal factors cos(m phi), sin(m phi) built by recurrence from the
  // in-plane direction; at the poles sin_theta = 0 and every m > 0 term
  // carries a P_l^m factor of 0, so the arbitrary azimuth is harmless.
  const double inv_sin = sin_theta > 1e-300 ? 1.0 / sin_theta : 0.0;
  const double cphi = omega[0] * inv_sin;
  const double sphi = omega[1] * inv_sin;
  std::vector<double> cm(static_cast<std::size_t>(lmax + 1));
  std::vector<double> sm(static_cast<std::size_t>(lmax + 1));
  cm[0] = 1.0;
  sm[0] = 0.0;
  for (int m = 1; m <= lmax; ++m) {
    cm[m] = cm[m - 1] * cphi - sm[m - 1] * sphi;
    sm[m] = sm[m - 1] * cphi + cm[m - 1] * sphi;
  }

  // Schmidt semi-normalisation factors sqrt(2 (l-m)!/(l+m)!) for m > 0.
  for (int l = 0; l <= lmax; ++l) {
    out[index(l, 0)] = plm[l][0];
    for (int m = 1; m <= l; ++m) {
      double ratio = 1.0;  // (l-m)! / (l+m)!
      for (int k = l - m + 1; k <= l + m; ++k) ratio /= k;
      const double norm = std::sqrt(2.0 * ratio);
      out[index(l, m)] = norm * plm[l][m] * cm[m];
      out[index(l, -m)] = norm * plm[l][m] * sm[m];
    }
  }
}

}  // namespace unsnap::angular
