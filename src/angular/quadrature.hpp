#pragma once

#include <array>
#include <string>
#include <vector>

#include "fem/geometry.hpp"

namespace unsnap::angular {

using fem::Vec3;

inline constexpr int kOctants = 8;

/// Sign pattern of octant o (bit 0 -> x, bit 1 -> y, bit 2 -> z; set bit
/// means the component is negative). Octant 0 is (+,+,+).
[[nodiscard]] constexpr std::array<double, 3> octant_signs(int octant) {
  return {(octant & 1) ? -1.0 : 1.0, (octant & 2) ? -1.0 : 1.0,
          (octant & 4) ? -1.0 : 1.0};
}

/// Which artificial quadrature generates the ordinates. SnapLike mirrors
/// SNAP's auto-generated set (equally spaced polar cosines, equal weights;
/// azimuths spread deterministically so every ordinate is distinct — the
/// mini-app never needs quadrature accuracy, only realistic data shapes).
/// Product is a real Gauss-Legendre x Chebyshev product rule for the
/// accuracy-sensitive tests and examples.
enum class QuadratureKind { SnapLike, Product };

[[nodiscard]] std::string to_string(QuadratureKind kind);
[[nodiscard]] QuadratureKind quadrature_from_string(const std::string& name);

/// Discrete ordinates set. Directions are stored for octant 0 (all
/// components positive) and reflected per octant; weights are identical
/// across octants and sum to 1 over the full sphere (SNAP's convention,
/// so an isotropic angular flux of value c has scalar flux c).
class QuadratureSet {
 public:
  QuadratureSet(QuadratureKind kind, int per_octant);

  [[nodiscard]] int per_octant() const {
    return static_cast<int>(base_.size());
  }
  [[nodiscard]] int total_angles() const { return kOctants * per_octant(); }

  /// Unit direction of (octant, angle).
  [[nodiscard]] Vec3 direction(int octant, int angle) const {
    const auto s = octant_signs(octant);
    const Vec3& b = base_[angle];
    return {s[0] * b[0], s[1] * b[1], s[2] * b[2]};
  }

  [[nodiscard]] double weight(int angle) const { return weights_[angle]; }
  [[nodiscard]] const std::vector<Vec3>& base_directions() const {
    return base_;
  }
  [[nodiscard]] QuadratureKind kind() const { return kind_; }

 private:
  QuadratureKind kind_;
  std::vector<Vec3> base_;
  std::vector<double> weights_;
};

}  // namespace unsnap::angular
