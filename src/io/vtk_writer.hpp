#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/discretization.hpp"
#include "core/flux_storage.hpp"
#include "mesh/hex_mesh.hpp"

namespace unsnap::io {

/// Named per-element scalar field for visualisation output.
using CellField = std::pair<std::string, std::vector<double>>;

/// Write the mesh and any number of per-element scalar fields as a legacy
/// ASCII VTK unstructured grid (loadable in ParaView/VisIt). Used by the
/// sweep-explorer and shielding examples.
void write_vtk(const std::string& path, const mesh::HexMesh& mesh,
               const std::vector<CellField>& cell_fields);

/// Element-averaged scalar flux of group g (volume-weighted nodal mean).
[[nodiscard]] std::vector<double> cell_average_flux(
    const core::Discretization& disc, const core::NodalField& phi, int g);

}  // namespace unsnap::io
