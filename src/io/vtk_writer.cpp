#include "io/vtk_writer.hpp"

#include <fstream>

#include "util/assert.hpp"

namespace unsnap::io {

void write_vtk(const std::string& path, const mesh::HexMesh& mesh,
               const std::vector<CellField>& cell_fields) {
  std::ofstream out(path);
  require(out.good(), "write_vtk: cannot open " + path);
  for (const auto& [name, values] : cell_fields)
    require(static_cast<int>(values.size()) == mesh.num_elements(),
            "write_vtk: field '" + name + "' has wrong size");

  out << "# vtk DataFile Version 3.0\n"
      << "UnSNAP mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n";

  out << "POINTS " << mesh.num_vertices() << " double\n";
  for (int v = 0; v < mesh.num_vertices(); ++v) {
    const auto& p = mesh.vertex(v);
    out << p[0] << ' ' << p[1] << ' ' << p[2] << '\n';
  }

  // VTK_HEXAHEDRON wants the bottom quad counter-clockwise then the top;
  // our corner c = i + 2j + 4k maps via {0,1,3,2, 4,5,7,6}.
  static constexpr int kVtkOrder[8] = {0, 1, 3, 2, 4, 5, 7, 6};
  out << "CELLS " << mesh.num_elements() << ' ' << 9 * mesh.num_elements()
      << '\n';
  for (int e = 0; e < mesh.num_elements(); ++e) {
    out << 8;
    for (const int c : kVtkOrder) out << ' ' << mesh.corner(e, c);
    out << '\n';
  }
  out << "CELL_TYPES " << mesh.num_elements() << '\n';
  for (int e = 0; e < mesh.num_elements(); ++e) out << "12\n";

  if (!cell_fields.empty()) {
    out << "CELL_DATA " << mesh.num_elements() << '\n';
    for (const auto& [name, values] : cell_fields) {
      out << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
      for (const double v : values) out << v << '\n';
    }
  }
}

std::vector<double> cell_average_flux(const core::Discretization& disc,
                                      const core::NodalField& phi, int g) {
  const core::ElementIntegrals& ints = disc.integrals();
  const int n = disc.num_nodes();
  std::vector<double> avg(static_cast<std::size_t>(disc.num_elements()));
  for (int e = 0; e < disc.num_elements(); ++e) {
    const double* w = ints.node_weights(e);
    const double* ph = phi.at(e, g);
    double acc = 0.0;
    for (int i = 0; i < n; ++i) acc += w[i] * ph[i];
    avg[e] = acc / ints.volume(e);
  }
  return avg;
}

}  // namespace unsnap::io
