#pragma once

#include <vector>

#include "core/assembler.hpp"

namespace unsnap::core {

using snap::ConcurrencyScheme;

/// Execution configuration of one sweep (the experiment axes of
/// Figures 3/4 and Table II).
struct SweepConfig {
  ConcurrencyScheme scheme = ConcurrencyScheme::ElementsGroups;
  linalg::SolverKind solver = linalg::SolverKind::GaussianElimination;
  /// Loop-collapse decode order; must match the flux layout for the
  /// paper's matched loop-order/data-layout schemes.
  FluxLayout loop_order = FluxLayout::AngleElementGroup;
  bool time_solve = false;
  int ng = 1;
  /// Legendre scattering orders; > 1 enables the moment machinery.
  int nmom = 1;
};

/// Executes full transport sweeps: all octants, all angles following each
/// angle's bucketed schedule, threading the configured loops. Owns the
/// per-thread assembly scratch.
class Sweeper {
 public:
  Sweeper(const Assembler& assembler, SweepConfig config);

  /// One full sweep: zeroes phi, solves every (octant, angle, element,
  /// group), leaves psi and the accumulated phi in `state`.
  void sweep(SweepState& state);

  /// Split sweep for drivers that interleave work between octants (the
  /// pipelined halo exchange): begin zeroes the accumulators, each
  /// sweep_octant solves one octant's angles, end folds up the timers.
  /// sweep() is exactly begin + the eight octants in order + end, so the
  /// split path is bitwise-identical to the monolithic one.
  void sweep_begin(SweepState& state);
  void sweep_octant(SweepState& state, int oct);
  void sweep_end();

  /// Wall time of the last sweep's assemble/solve region.
  [[nodiscard]] double last_sweep_seconds() const { return sweep_seconds_; }
  /// Sum of per-thread pure-solve time in the last sweep (valid when
  /// config.time_solve). Reported as thread-summed CPU seconds, matching
  /// the paper's "% of runtime in the solve" accounting.
  [[nodiscard]] double last_solve_seconds() const { return solve_seconds_; }

  [[nodiscard]] const SweepConfig& config() const { return config_; }

 private:
  /// Everything the batched kernel needs per batched angle, precomputed
  /// once per batch outside the parallel region: the angle's SweepState
  /// (schedule + ylm rows bound), its direction and quadrature weight.
  struct BatchAngle {
    SweepState state;
    Vec3 omega{};
    double weight = 0.0;
    int a = 0;
  };

  const Assembler* assembler_;
  SweepConfig config_;
  std::vector<AssemblyContext> contexts_;  // one per OpenMP thread
  std::vector<BatchAngle> batch_angles_;   // per-batch scratch (AngleBatch)
  double sweep_seconds_ = 0.0;
  double solve_seconds_ = 0.0;
  /// Spherical-harmonic coefficient tables per (octant, angle):
  /// accumulation row Y_lm(omega) and source row (2l+1) Y_lm(omega).
  NDArray<double, 3> ylm_acc_;
  NDArray<double, 3> ylm_src_;

  void sweep_angle(SweepState state, int oct, int a);
  void sweep_octant_angles_atomic(const SweepState& state, int oct);
  void sweep_octant_batched(const SweepState& state, int oct);
  /// Grow the per-thread scratch if the OpenMP thread count was raised
  /// after construction (contexts_[omp_get_thread_num()] must never be
  /// out of bounds).
  void ensure_contexts();
};

}  // namespace unsnap::core
