#pragma once

#include "fem/element_matrices.hpp"
#include "fem/hex_element.hpp"
#include "mesh/hex_mesh.hpp"
#include "util/ndarray.hpp"

namespace unsnap::core {

using fem::Vec3;

/// Mesh-level store of every element's precomputed basis-pair integrals in
/// flat, streamable arrays — the 13-odd arrays the paper's assembly kernel
/// reads (§III-C). Built in parallel over elements. Also resolves the
/// neighbour face-node correspondences once so the hot loop's upwind
/// gather is a plain permuted load.
class ElementIntegrals {
 public:
  ElementIntegrals(const mesh::HexMesh& mesh,
                   const fem::HexReferenceElement& ref);

  [[nodiscard]] int num_elements() const { return ne_; }
  [[nodiscard]] int num_nodes() const { return n_; }
  [[nodiscard]] int nodes_per_face() const { return nf_; }

  /// n x n row-major blocks.
  [[nodiscard]] const double* mass(int e) const { return &mass_(e, 0); }
  [[nodiscard]] const double* grad(int e, int d) const {
    return &grad_(d, e, 0);
  }
  /// nf x nf row-major face-local blocks for direction component d.
  [[nodiscard]] const double* face(int e, int f, int d) const {
    return &face_(e, f, d, 0);
  }
  /// Area-weighted outward normal of face f (matches mesh value; also
  /// recomputed here with the full-order rule as a consistency check).
  [[nodiscard]] Vec3 face_normal(int e, int f) const {
    return {fnormal_(e, f, 0), fnormal_(e, f, 1), fnormal_(e, f, 2)};
  }
  /// Upwind gather map: entry j is the *neighbour's volume node index*
  /// coincident with my face-local node j (only valid for interior faces).
  [[nodiscard]] const int* neighbor_perm(int e, int f) const {
    return &perm_(e, f, 0);
  }
  /// Volume node ids of my face-local nodes (shared across elements).
  [[nodiscard]] const int* face_nodes(int f) const {
    return face_nodes_[f].data();
  }
  [[nodiscard]] double volume(int e) const { return volume_[e]; }
  /// Nodal integration weights: w_j = Int phi_j dV (column sums of the
  /// mass matrix); balance diagnostics contract fields against these.
  [[nodiscard]] const double* node_weights(int e) const {
    return &node_weight_(e, 0);
  }
  /// Column sums of the directional face matrices: l_{d,j} = Int_f n_d
  /// phi_j dS in face-local indexing, used for leakage accounting.
  [[nodiscard]] const double* face_col_sums(int e, int f, int d) const {
    return &face_colsum_(e, f, d, 0);
  }

  [[nodiscard]] std::size_t bytes() const;

 private:
  int ne_, n_, nf_;
  NDArray<double, 2> mass_;      // [e][n*n]
  NDArray<double, 3> grad_;      // [d][e][n*n]
  NDArray<double, 4> face_;      // [e][f][d][nf*nf]
  NDArray<double, 3> fnormal_;   // [e][f][3]
  NDArray<int, 3> perm_;         // [e][f][nf]
  NDArray<double, 2> node_weight_;   // [e][n]
  NDArray<double, 4> face_colsum_;   // [e][f][d][nf]
  std::vector<double> volume_;
  std::array<std::vector<int>, fem::kFacesPerHex> face_nodes_;
};

}  // namespace unsnap::core
