#include "core/source.hpp"

#include <algorithm>
#include <cmath>

#include "angular/harmonics.hpp"
#include "util/assert.hpp"

namespace unsnap::core {

void SourceUpdater::update_outer(const NodalField& phi,
                                 NodalField& qout) const {
  const int ne = disc_->num_elements();
  const int ng = problem_->xs.ng;
  const int n = disc_->num_nodes();
  const auto& slgg = problem_->xs.slgg;
  const auto& qext = problem_->qext;

#pragma omp parallel for schedule(static)
  for (int e = 0; e < ne; ++e) {
    const int m = problem_->material[e];
    for (int g = 0; g < ng; ++g) {
      double* out = qout.at(e, g);
      const double q0 = qext(e, g);
#pragma omp simd
      for (int i = 0; i < n; ++i) out[i] = q0;
      for (int gp = 0; gp < ng; ++gp) {
        if (gp == g) continue;
        const double xs = slgg(m, gp, g);
        if (xs == 0.0) continue;
        const double* ph = phi.at(e, gp);
#pragma omp simd
        for (int i = 0; i < n; ++i) out[i] += xs * ph[i];
      }
    }
  }
}

void SourceUpdater::update_inner(const NodalField& phi,
                                 const NodalField& qout,
                                 NodalField& qin) const {
  const int ne = disc_->num_elements();
  const int ng = problem_->xs.ng;
  const int n = disc_->num_nodes();
  const auto& slgg = problem_->xs.slgg;

#pragma omp parallel for schedule(static)
  for (int e = 0; e < ne; ++e) {
    const int m = problem_->material[e];
    for (int g = 0; g < ng; ++g) {
      const double xs = slgg(m, g, g);
      const double* qo = qout.at(e, g);
      const double* ph = phi.at(e, g);
      double* out = qin.at(e, g);
#pragma omp simd
      for (int i = 0; i < n; ++i) out[i] = qo[i] + xs * ph[i];
    }
  }
}

void SourceUpdater::update_outer_moments(
    const std::vector<NodalField>& phi_hi,
    std::vector<NodalField>& qout_hi) const {
  const int ne = disc_->num_elements();
  const int ng = problem_->xs.ng;
  const int n = disc_->num_nodes();
  const auto& slgg_hi = problem_->xs.slgg_hi;
  UNSNAP_ASSERT(phi_hi.size() == qout_hi.size());

  for (std::size_t mom = 0; mom < qout_hi.size(); ++mom) {
    // Flat moment index mom+1; its Legendre degree selects the transfer.
    const int l = angular::SphericalHarmonics::degree_of(
        static_cast<int>(mom) + 1);
#pragma omp parallel for schedule(static)
    for (int e = 0; e < ne; ++e) {
      const int m = problem_->material[e];
      for (int g = 0; g < ng; ++g) {
        double* out = qout_hi[mom].at(e, g);
#pragma omp simd
        for (int i = 0; i < n; ++i) out[i] = 0.0;
        for (int gp = 0; gp < ng; ++gp) {
          if (gp == g) continue;
          const double xs = slgg_hi(m, l - 1, gp, g);
          if (xs == 0.0) continue;
          const double* ph = phi_hi[mom].at(e, gp);
#pragma omp simd
          for (int i = 0; i < n; ++i) out[i] += xs * ph[i];
        }
      }
    }
  }
}

void SourceUpdater::update_inner_moments(
    const std::vector<NodalField>& phi_hi,
    const std::vector<NodalField>& qout_hi,
    std::vector<NodalField>& qin_hi) const {
  const int ne = disc_->num_elements();
  const int ng = problem_->xs.ng;
  const int n = disc_->num_nodes();
  const auto& slgg_hi = problem_->xs.slgg_hi;

  for (std::size_t mom = 0; mom < qin_hi.size(); ++mom) {
    const int l = angular::SphericalHarmonics::degree_of(
        static_cast<int>(mom) + 1);
#pragma omp parallel for schedule(static)
    for (int e = 0; e < ne; ++e) {
      const int m = problem_->material[e];
      for (int g = 0; g < ng; ++g) {
        const double xs = slgg_hi(m, l - 1, g, g);
        const double* qo = qout_hi[mom].at(e, g);
        const double* ph = phi_hi[mom].at(e, g);
        double* out = qin_hi[mom].at(e, g);
#pragma omp simd
        for (int i = 0; i < n; ++i) out[i] = qo[i] + xs * ph[i];
      }
    }
  }
}

double max_relative_change(const NodalField& now, const NodalField& before,
                           double floor) {
  UNSNAP_ASSERT(now.size() == before.size());
  const double* a = now.data();
  const double* b = before.data();
  const auto size = static_cast<long>(now.size());
  double worst = 0.0;
#pragma omp parallel for reduction(max : worst) schedule(static)
  for (long i = 0; i < size; ++i) {
    const double diff = std::fabs(a[i] - b[i]);
    const double base = std::fabs(b[i]);
    worst = std::max(worst, base > floor ? diff / base : diff);
  }
  return worst;
}

}  // namespace unsnap::core
