#include "core/problem_data.hpp"

#include "util/assert.hpp"

namespace unsnap::core {

ProblemData::ProblemData(const Discretization& disc, const snap::Input& input)
    : ProblemData(disc,
                  snap::make_cross_sections(input.ng, input.scattering_ratio,
                                            input.nmom),
                  snap::assign_materials(disc.mesh(), input.mat_opt),
                  snap::make_external_source(disc.mesh(), input.src_opt,
                                             input.ng)) {}

ProblemData::ProblemData(const Discretization& disc, snap::CrossSections xs_in,
                         std::vector<int> material_in,
                         NDArray<double, 2> qext_in)
    : xs(std::move(xs_in)),
      material(std::move(material_in)),
      qext(std::move(qext_in)) {
  require(static_cast<int>(material.size()) == disc.num_elements(),
          "ProblemData: material field size mismatch");
  require(static_cast<int>(qext.extent(0)) == disc.num_elements() &&
              static_cast<int>(qext.extent(1)) == xs.ng,
          "ProblemData: source array shape mismatch");
  for (const int m : material)
    require(m >= 0 && m < xs.num_materials,
            "ProblemData: material id out of range");
  flatten(disc);
}

void ProblemData::flatten(const Discretization& disc) {
  const auto ne = static_cast<std::size_t>(disc.num_elements());
  const auto ng = static_cast<std::size_t>(xs.ng);
  sigt_eg.resize({ne, ng});
  siga_eg.resize({ne, ng});
  for (std::size_t e = 0; e < ne; ++e) {
    const int m = material[e];
    for (std::size_t g = 0; g < ng; ++g) {
      sigt_eg(e, g) = xs.sigt(m, g);
      siga_eg(e, g) = xs.siga(m, g);
    }
  }
}

}  // namespace unsnap::core
