#pragma once

#include <memory>

#include "core/balance.hpp"
#include "core/observer.hpp"
#include "core/preassembly.hpp"
#include "core/source.hpp"
#include "core/sweeper.hpp"

namespace unsnap::core {

/// Outcome of a TransportSolver::run().
struct IterationResult {
  bool converged = false;
  int outers = 0;
  int inners = 0;                    // total inner iterations (all outers)
  int sweeps = 0;    // total transport sweeps (== inners under SI)
  int krylov_iters = 0;  // Arnoldi steps (gmres scheme only)
  double final_inner_change = 0.0;   // last inner dfmxi
  double final_outer_change = 0.0;   // last outer dfmxo
  double total_seconds = 0.0;
  double assemble_solve_seconds = 0.0;  // wall time inside the sweeps
  double solve_seconds = 0.0;  // thread-summed pure-solve time (if timed)
  /// Max flux change per inner (SI: one entry per sweep; gmres: one entry
  /// per restart cycle) — the same quantity comm::BlockJacobiResult
  /// records globally.
  std::vector<double> inner_history;
  /// gmres only: relative 2-norm residual per Krylov iteration (entry 0 is
  /// the initial residual of the first outer's inner solve).
  std::vector<double> residual_history;
};

/// The UnSNAP mini-app: owns the discretisation, problem data and solution
/// state and drives SNAP's outer/inner source iteration around the
/// wavefront sweeps. The fine-grained methods (update_*_source, sweep,
/// inner_change) are public so the block Jacobi driver and the tests can
/// interleave halo exchanges and inspect single iterations.
class TransportSolver {
 public:
  explicit TransportSolver(const snap::Input& input);
  /// Use a caller-supplied mesh (block Jacobi subdomains, bespoke tests).
  TransportSolver(mesh::HexMesh mesh, const snap::Input& input);
  /// Share an existing discretisation across solvers — the benchmark
  /// harness sweeps schemes/threads/solvers without rebuilding the mesh,
  /// element integrals and schedules for every configuration. The input's
  /// order/nang/quadrature must match the discretisation.
  TransportSolver(std::shared_ptr<const Discretization> disc,
                  const snap::Input& input);
  /// Fully custom problem data (bespoke materials/sources beyond the SNAP
  /// options — see the shielding and duct examples).
  TransportSolver(std::shared_ptr<const Discretization> disc,
                  const snap::Input& input, ProblemData problem);

  /// Full solve: oitm outers of up to iitm inners; with
  /// input.fixed_iterations the loop ignores the convergence tests and
  /// always runs oitm x iitm sweeps (the paper's timing setup). With
  /// input.iteration_scheme == Gmres the within-group solve is delegated
  /// to the sweep-preconditioned Krylov driver (accel::run_gmres), with
  /// the same outer loop and convergence vocabulary.
  IterationResult run();

  // --- single-iteration control ---------------------------------------
  void update_outer_source();  // group-to-group scattering (Jacobi)
  void update_inner_source();  // within-group scattering
  /// One full sweep; updates psi and phi, snapshots phi for inner_change()
  /// and refreshes reflective boundary data for the next sweep.
  void sweep();
  /// One sweep with the iteration-lagged couplings frozen: the cycle-lag
  /// snapshot is not recaptured and the reflective boundary mirror is not
  /// refreshed, so the sweep is an affine map of the flux moments alone.
  /// This is the operator application of the matrix-free Krylov inners
  /// (accel/) — Krylov basis vectors are not physical fluxes, and folding
  /// them into the lagged couplings would destroy the linearity GMRES
  /// needs. Updates psi and phi only (no phi_old_ snapshot).
  void sweep_frozen_coupling();
  /// Re-anchor the lagged couplings on the current (physical) psi: mirror
  /// the reflective boundaries and recapture the cycle-lag snapshot.
  /// Called by the Krylov inner driver after its closing physical sweep,
  /// matching what sweep() does around each source iteration.
  void refresh_lagged_couplings();

  /// Split sweep for drivers that interleave halo traffic between octants
  /// (comm::DistributedSweepSolver's pipelined exchange). sweep() is
  /// exactly sweep_begin() + the eight sweep_octant() calls in order +
  /// sweep_end(), and sweep_frozen_coupling() the same with
  /// frozen_coupling = true, so the split path stays bitwise-identical to
  /// the monolithic sweeps. Between the calls the caller may rewrite the
  /// halo slots of boundary_values(); nothing else may be touched.
  void sweep_begin(bool frozen_coupling = false);
  void sweep_octant(int oct);
  void sweep_end(bool frozen_coupling = false);

  [[nodiscard]] double inner_change() const;

  // --- state access -----------------------------------------------------
  [[nodiscard]] const Discretization& discretization() const {
    return *disc_;
  }
  [[nodiscard]] const ProblemData& problem() const { return problem_; }
  /// Mutable problem data (manufactured solutions rewrite the source).
  [[nodiscard]] ProblemData& problem() { return problem_; }
  [[nodiscard]] const NodalField& scalar_flux() const { return phi_; }
  [[nodiscard]] NodalField& scalar_flux() { return phi_; }
  [[nodiscard]] const AngularFlux& angular_flux() const { return psi_; }
  [[nodiscard]] AngularFlux& angular_flux() { return psi_; }
  /// Flux moments above l = 0 (empty unless input.nmom > 1); entry m is
  /// the flat spherical-harmonic index m+1.
  [[nodiscard]] const std::vector<NodalField>& flux_moments() const {
    return phi_mom_;
  }
  /// Mutable moments (the Krylov inner driver scatters iterates into them).
  [[nodiscard]] std::vector<NodalField>& flux_moments() { return phi_mom_; }

  /// Prescribed boundary flux (Dirichlet inflow / halo target). Allocated
  /// on first access; inactive means vacuum.
  BoundaryAngularFlux& boundary_values();
  [[nodiscard]] bool has_boundary_values() const { return bc_.active(); }

  /// Per-angle (manufactured) source; allocated on first access.
  AngularFlux& angular_source();

  /// Additive isotropic coupling source over (element, group), folded on
  /// top of the scattering outer source at every update_outer_source().
  /// This is the seam the k-eigenvalue driver feeds: each groupset block
  /// writes its fission + cross-groupset scattering source here before
  /// running the block's solve, so both iteration schemes, preassembly
  /// and every concurrency scheme see it without modification (GMRES
  /// freezes the outer source per outer, exactly as for qext). Allocated
  /// on first access; inactive (absent) otherwise.
  NodalField& coupling_source();
  [[nodiscard]] bool has_coupling_source() const {
    return coupling_.size() != 0;
  }
  /// Moment-space companions of coupling_source(): nmom^2 - 1 fields,
  /// entry m feeding the outer source of flat harmonic index m + 1.
  /// Allocated on first access (nmom > 1 only; empty otherwise).
  std::vector<NodalField>& coupling_source_moments();

  /// Switch the sweep kernel to pre-assembled operators (paper §IV-B-1).
  void enable_preassembly(PreassembledOperator::Mode mode);
  void disable_preassembly();
  /// Adopt an operator built by another solver over the same
  /// discretisation/problem (the daemon's lowering cache injects here so
  /// digest-identical submissions skip factorization). Dimensions are
  /// checked; a null pointer disables preassembly.
  void set_preassembly(std::shared_ptr<const PreassembledOperator> pre);
  [[nodiscard]] const PreassembledOperator* preassembly() const {
    return pre_.get();
  }
  /// Shared handle for caching the built operator alongside the
  /// discretisation (what the serve layer stores after a cold run).
  [[nodiscard]] std::shared_ptr<const PreassembledOperator>
  shared_preassembly() const {
    return pre_;
  }

  [[nodiscard]] BalanceReport balance() const;
  [[nodiscard]] const snap::Input& input() const { return input_; }

  /// Subscribe an observer to the iteration events of run() (both
  /// schemes). Not owned; nullptr unsubscribes. See core::IterationObserver
  /// for the event contract.
  void set_observer(IterationObserver* observer) { observer_ = observer; }
  [[nodiscard]] IterationObserver* observer() const { return observer_; }

  /// Cumulative sweep timings since construction.
  [[nodiscard]] double assemble_solve_seconds() const {
    return assemble_solve_seconds_;
  }
  [[nodiscard]] double solve_seconds() const { return solve_seconds_; }

 private:
  snap::Input input_;
  std::shared_ptr<const Discretization> disc_;
  ProblemData problem_;
  Assembler assembler_;
  Sweeper sweeper_;
  SourceUpdater sources_;
  AngularFlux psi_;
  NodalField phi_, phi_old_, qout_, qin_;
  std::vector<NodalField> phi_mom_, qout_mom_, qin_mom_;  // nmom > 1 only
  NodalField coupling_;                        // keff groupset coupling
  std::vector<NodalField> coupling_mom_;       // its nmom > 1 companions
  BoundaryAngularFlux bc_;
  /// Previous-iterate lagged-face traces, sized (and captured per sweep)
  /// only when the schedule set broke sweep cycles: lagged faces read
  /// from here so their semantics are deterministic across concurrency
  /// schemes and thread counts.
  LagSnapshot lag_;
  std::unique_ptr<AngularFlux> qang_;
  std::shared_ptr<const PreassembledOperator> pre_;
  IterationObserver* observer_ = nullptr;
  double assemble_solve_seconds_ = 0.0;
  double solve_seconds_ = 0.0;

  [[nodiscard]] SweepState make_state();
  /// Gather the current psi traces behind every lagged face into lag_
  /// (called at sweep start; lagged faces then read last-sweep data).
  void capture_lag_snapshot();
  /// Mirror outgoing boundary traces into the sign-flipped octants of the
  /// boundary storage (reflective sides only).
  void apply_reflective_boundaries();
};

}  // namespace unsnap::core
