#pragma once

#include <memory>

#include "angular/quadrature.hpp"
#include "core/element_integrals.hpp"
#include "fem/hex_element.hpp"
#include "mesh/hex_mesh.hpp"
#include "snap/input.hpp"
#include "sweep/schedule.hpp"

namespace unsnap::core {

/// Everything about the discretised problem that is independent of the
/// solution state: mesh, reference element, per-element integrals, the
/// angular quadrature and the per-angle sweep schedules. Immutable after
/// construction; shared by the sweeper, sources, balance diagnostics and
/// the pre-assembly engine.
class Discretization {
 public:
  /// Build from an existing mesh (used by the block Jacobi subdomains).
  Discretization(mesh::HexMesh mesh, int order,
                 angular::QuadratureKind quadrature_kind, int nang,
                 sweep::CycleStrategy cycle_strategy);

  /// Build the mesh described by the input, then discretise it.
  explicit Discretization(const snap::Input& input);

  [[nodiscard]] const mesh::HexMesh& mesh() const { return mesh_; }
  [[nodiscard]] const fem::HexReferenceElement& ref() const { return ref_; }
  [[nodiscard]] const angular::QuadratureSet& quadrature() const {
    return quadrature_;
  }
  [[nodiscard]] const ElementIntegrals& integrals() const {
    return *integrals_;
  }
  [[nodiscard]] const sweep::ScheduleSet& schedules() const {
    return *schedules_;
  }

  [[nodiscard]] int num_elements() const { return mesh_.num_elements(); }
  [[nodiscard]] int num_nodes() const { return ref_.num_nodes(); }
  [[nodiscard]] int nodes_per_face() const { return ref_.nodes_per_face(); }
  [[nodiscard]] int nang() const { return quadrature_.per_octant(); }

 private:
  mesh::HexMesh mesh_;
  fem::HexReferenceElement ref_;
  angular::QuadratureSet quadrature_;
  std::unique_ptr<ElementIntegrals> integrals_;
  std::unique_ptr<sweep::ScheduleSet> schedules_;
};

}  // namespace unsnap::core
