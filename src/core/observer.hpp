#pragma once

namespace unsnap::core {

/// Iteration-event callback interface threaded through the solver stacks
/// (core::TransportSolver, accel::run_gmres, comm::DistributedSweepSolver).
/// Progress printing, convergence tracing and live dashboards subscribe to
/// events instead of growing `--verbose` printf paths inside the solvers;
/// the solvers themselves stay output-free.
///
/// Contract: every handler is a no-op by default, so observers override
/// only what they need. Events fire on the thread driving the iteration —
/// for the distributed drivers that is rank 0's worker thread, with
/// globally-reduced values (the same numbers the result records). The
/// observer must not mutate the solver; it sees state, it does not steer.
class IterationObserver {
 public:
  virtual ~IterationObserver() = default;

  /// An outer (group-coupling Jacobi) iteration is starting; `outer` is
  /// 0-based.
  virtual void on_outer_begin(int outer) { (void)outer; }

  /// One inner iteration finished. `inner` counts from 0 within the run,
  /// `sweeps` is the cumulative transport-sweep count and `change` the
  /// pointwise max relative flux change (SNAP's dfmxi). Under gmres inners
  /// this fires once per recorded inner-history entry (restart-cycle
  /// checks plus the closing change), mirroring IterationResult.
  virtual void on_inner(int inner, int sweeps, double change) {
    (void)inner, (void)sweeps, (void)change;
  }

  /// One Krylov iteration inside a gmres inner solve. `residual` is the
  /// 2-norm residual relative to the inner right-hand side (the same
  /// normalisation IterationResult::residual_history records).
  virtual void on_krylov(int iteration, double residual) {
    (void)iteration, (void)residual;
  }

  /// An outer iteration finished. `change` is the outer flux change
  /// (SNAP's dfmxo); `converged` reflects SNAP's combined outer test.
  virtual void on_outer_end(int outer, double change, bool converged) {
    (void)outer, (void)change, (void)converged;
  }

  /// One power-iteration outer of the k-eigenvalue driver (xs::KeffSolver)
  /// finished: `k` is the current eigenvalue estimate, `k_change` the
  /// absolute change in k and `fission_change` the pointwise max relative
  /// change of the normalised fission source. The per-groupset transport
  /// solves in between fire the events above as usual.
  virtual void on_keff_outer(int outer, double k, double k_change,
                             double fission_change) {
    (void)outer, (void)k, (void)k_change, (void)fission_change;
  }
};

}  // namespace unsnap::core
