#pragma once

#include "angular/quadrature.hpp"
#include "snap/input.hpp"
#include "util/aligned.hpp"
#include "util/assert.hpp"

namespace unsnap::core {

using snap::FluxLayout;

/// The big angular flux array (paper §III-C: "streaming access of a very
/// large array"). Node blocks are always contiguous and SIMD-aligned; the
/// relative order of the element and group extents follows the configured
/// layout, which is exactly the data-layout axis of Figures 3/4.
class AngularFlux {
 public:
  AngularFlux() = default;
  AngularFlux(FluxLayout layout, int nang, int ne, int ng, int n)
      : layout_(layout), nang_(nang), ne_(ne), ng_(ng), n_(n) {
    data_.assign(static_cast<std::size_t>(angular::kOctants) * nang * ne *
                     ng * n,
                 0.0);
  }

  [[nodiscard]] double* at(int oct, int a, int e, int g) {
    return data_.data() + offset(oct, a, e, g);
  }
  [[nodiscard]] const double* at(int oct, int a, int e, int g) const {
    return data_.data() + offset(oct, a, e, g);
  }

  [[nodiscard]] std::size_t offset(int oct, int a, int e, int g) const {
    const auto angle =
        static_cast<std::size_t>(oct) * nang_ + static_cast<std::size_t>(a);
    if (layout_ == FluxLayout::AngleElementGroup)
      return (((angle * ne_) + e) * ng_ + g) * n_;
    return (((angle * ng_) + g) * ne_ + e) * n_;
  }

  [[nodiscard]] FluxLayout layout() const { return layout_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] int node_count() const { return n_; }
  void fill(double v) { data_.assign(data_.size(), v); }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

 private:
  FluxLayout layout_ = FluxLayout::AngleElementGroup;
  std::size_t nang_ = 0, ne_ = 0, ng_ = 0, n_ = 0;
  AlignedVector<double> data_;
};

/// Angle-independent nodal field over (element, group): scalar flux and
/// the source arrays. Extent order matches the flux layout so the sweep
/// touches it with the same stride pattern the paper tuned.
class NodalField {
 public:
  NodalField() = default;
  NodalField(FluxLayout layout, int ne, int ng, int n)
      : layout_(layout), ne_(ne), ng_(ng), n_(n) {
    data_.assign(static_cast<std::size_t>(ne) * ng * n, 0.0);
  }

  [[nodiscard]] double* at(int e, int g) {
    return data_.data() + offset(e, g);
  }
  [[nodiscard]] const double* at(int e, int g) const {
    return data_.data() + offset(e, g);
  }
  [[nodiscard]] std::size_t offset(int e, int g) const {
    if (layout_ == FluxLayout::AngleElementGroup)
      return (static_cast<std::size_t>(e) * ng_ + g) * n_;
    return (static_cast<std::size_t>(g) * ne_ + e) * n_;
  }

  [[nodiscard]] int num_elements() const { return static_cast<int>(ne_); }
  [[nodiscard]] int num_groups() const { return static_cast<int>(ng_); }
  [[nodiscard]] int node_count() const { return static_cast<int>(n_); }
  [[nodiscard]] FluxLayout layout() const { return layout_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  FluxLayout layout_ = FluxLayout::AngleElementGroup;
  std::size_t ne_ = 0, ng_ = 0, n_ = 0;
  AlignedVector<double> data_;
};

/// Prescribed angular flux on boundary faces, keyed by the mesh's dense
/// boundary-face index: Dirichlet inflow data for manufactured solutions
/// and the halo buffers of the block Jacobi decomposition. Face-node
/// values are stored in the owner's face-local ordering. Inactive (empty)
/// means vacuum.
class BoundaryAngularFlux {
 public:
  BoundaryAngularFlux() = default;
  BoundaryAngularFlux(int num_boundary_faces, int nang, int ng, int nf)
      : nang_(nang), ng_(ng), nf_(nf) {
    data_.assign(static_cast<std::size_t>(num_boundary_faces) *
                     angular::kOctants * nang * ng * nf,
                 0.0);
  }

  [[nodiscard]] bool active() const { return !data_.empty(); }
  [[nodiscard]] double* at(int bface, int oct, int a, int g) {
    return data_.data() + offset(bface, oct, a, g);
  }
  [[nodiscard]] const double* at(int bface, int oct, int a, int g) const {
    return data_.data() + offset(bface, oct, a, g);
  }
  [[nodiscard]] std::size_t offset(int bface, int oct, int a, int g) const {
    return (((static_cast<std::size_t>(bface) * angular::kOctants + oct) *
                 nang_ +
             a) *
                ng_ +
            g) *
           nf_;
  }
  void fill(double v) { data_.assign(data_.size(), v); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

 private:
  std::size_t nang_ = 0, ng_ = 0, nf_ = 0;
  AlignedVector<double> data_;
};

}  // namespace unsnap::core
