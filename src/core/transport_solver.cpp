#include "core/transport_solver.hpp"

#include <omp.h>

#include "accel/inner.hpp"
#include "mesh/mesh_builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace unsnap::core {

namespace {

// One observation per full-domain sweep (8 octants), not per element:
// cheap enough to stay on unconditionally, so `unsnap-client metrics`
// sees solver activity even for untraced runs.
void count_sweep(double seconds) {
  static obs::Counter& total = obs::MetricsRegistry::global().counter(
      "unsnap_sweeps_total", "Full-domain transport sweeps executed");
  static obs::Histogram& latency = obs::MetricsRegistry::global().histogram(
      "unsnap_sweep_seconds", "Wall time of one full-domain sweep",
      obs::Histogram::latency_bounds());
  total.inc();
  latency.observe(seconds);
}

mesh::HexMesh build_mesh(const snap::Input& input) {
  input.validate();
  mesh::MeshOptions options;
  options.dims = input.dims;
  options.extent = {input.extent[0], input.extent[1], input.extent[2]};
  options.twist = input.twist;
  options.shuffle_seed = input.shuffle_seed;
  return mesh::build_brick_mesh(options);
}

// Thread count must be pinned before the Sweeper sizes its per-thread
// scratch; returns the input unchanged so this can run in the initialiser
// list ahead of the discretisation.
const snap::Input& pin_threads(const snap::Input& input) {
  if (input.num_threads > 0) omp_set_num_threads(input.num_threads);
  return input;
}

SweepConfig make_sweep_config(const snap::Input& input) {
  SweepConfig config;
  config.scheme = input.scheme;
  config.solver = input.solver;
  config.loop_order = input.layout;
  config.ng = input.ng;
  config.time_solve = input.time_solve;
  config.nmom = input.nmom;
  return config;
}

}  // namespace

TransportSolver::TransportSolver(const snap::Input& input)
    : TransportSolver(build_mesh(input), input) {}

TransportSolver::TransportSolver(mesh::HexMesh mesh, const snap::Input& input)
    : TransportSolver(
          (pin_threads(input),
           std::make_shared<const Discretization>(
               std::move(mesh), input.order, input.quadrature, input.nang,
               input.cycle_strategy)),
          input) {}

TransportSolver::TransportSolver(std::shared_ptr<const Discretization> disc,
                                 const snap::Input& input)
    : TransportSolver(disc, input, ProblemData(*disc, input)) {}

TransportSolver::TransportSolver(std::shared_ptr<const Discretization> disc,
                                 const snap::Input& input,
                                 ProblemData problem)
    : input_(pin_threads(input)),
      disc_(std::move(disc)),
      problem_(std::move(problem)),
      assembler_(*disc_, problem_),
      sweeper_(assembler_, make_sweep_config(input)),
      sources_(*disc_, problem_),
      psi_(input.layout, disc_->nang(), disc_->num_elements(), input.ng,
           disc_->num_nodes()),
      phi_(input.layout, disc_->num_elements(), input.ng,
           disc_->num_nodes()),
      phi_old_(input.layout, disc_->num_elements(), input.ng,
               disc_->num_nodes()),
      qout_(input.layout, disc_->num_elements(), input.ng,
            disc_->num_nodes()),
      qin_(input.layout, disc_->num_elements(), input.ng,
           disc_->num_nodes()) {
  require(disc_->ref().order() == input_.order,
          "TransportSolver: input order does not match discretisation");
  require(disc_->nang() == input_.nang,
          "TransportSolver: input nang does not match discretisation");
  require(problem_.xs.ng == input_.ng,
          "TransportSolver: problem data group count does not match input");
  require(problem_.xs.nmom >= input_.nmom,
          "TransportSolver: cross sections carry fewer scattering orders "
          "than input.nmom");
  if (input_.any_reflective()) boundary_values();  // activate the storage
  for (int s = 0; s < disc_->schedules().unique_count(); ++s)
    if (!disc_->schedules().unique_schedule(s).lagged_faces().empty()) {
      lag_ = LagSnapshot(disc_->schedules(), input_.ng,
                         disc_->nodes_per_face());
      break;
    }
  if (input_.nmom > 1) {
    const int extra = input_.nmom * input_.nmom - 1;
    const NodalField proto(input_.layout, disc_->num_elements(), input_.ng,
                           disc_->num_nodes());
    phi_mom_.assign(static_cast<std::size_t>(extra), proto);
    qout_mom_.assign(static_cast<std::size_t>(extra), proto);
    qin_mom_.assign(static_cast<std::size_t>(extra), proto);
  }
}

SweepState TransportSolver::make_state() {
  SweepState state;
  state.psi = &psi_;
  state.lag = lag_.active() ? &lag_ : nullptr;
  state.phi = &phi_;
  state.qin = &qin_;
  state.qang = qang_.get();
  state.bc = bc_.active() ? &bc_ : nullptr;
  state.pre = pre_.get();
  if (input_.nmom > 1) {
    state.phi_hi = &phi_mom_;
    state.qmom_hi = &qin_mom_;
    state.moment_count = input_.nmom * input_.nmom;
  }
  return state;
}

void TransportSolver::update_outer_source() {
  OBS_SPAN("source.outer");
  sources_.update_outer(phi_, qout_);
  if (input_.nmom > 1) sources_.update_outer_moments(phi_mom_, qout_mom_);
  if (coupling_.size() != 0) {
    double* q = qout_.data();
    const double* c = coupling_.data();
    const auto count = static_cast<std::ptrdiff_t>(qout_.size());
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < count; ++i) q[i] += c[i];
    for (std::size_t m = 0; m < coupling_mom_.size(); ++m) {
      double* qm = qout_mom_[m].data();
      const double* cm = coupling_mom_[m].data();
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < count; ++i) qm[i] += cm[i];
    }
  }
}

NodalField& TransportSolver::coupling_source() {
  if (coupling_.size() == 0)
    coupling_ = NodalField(input_.layout, disc_->num_elements(), input_.ng,
                           disc_->num_nodes());
  return coupling_;
}

std::vector<NodalField>& TransportSolver::coupling_source_moments() {
  const int extra = input_.nmom * input_.nmom - 1;
  if (coupling_mom_.empty() && extra > 0)
    coupling_mom_.assign(static_cast<std::size_t>(extra),
                         NodalField(input_.layout, disc_->num_elements(),
                                    input_.ng, disc_->num_nodes()));
  return coupling_mom_;
}

void TransportSolver::update_inner_source() {
  OBS_SPAN("source.inner");
  sources_.update_inner(phi_, qout_, qin_);
  if (input_.nmom > 1)
    sources_.update_inner_moments(phi_mom_, qout_mom_, qin_mom_);
}

void TransportSolver::capture_lag_snapshot() {
  const sweep::ScheduleSet& schedules = disc_->schedules();
  const mesh::HexMesh& mesh = disc_->mesh();
  const ElementIntegrals& ints = disc_->integrals();
  const int nf = disc_->nodes_per_face();
  for (int oct = 0; oct < angular::kOctants; ++oct)
    for (int a = 0; a < disc_->nang(); ++a) {
      const auto& lagged = schedules.get(oct, a).lagged_faces();
      for (std::size_t slot = 0; slot < lagged.size(); ++slot) {
        const auto& [e, f] = lagged[slot];
        const int nbr = mesh.neighbor(e, f);
        const int* perm = ints.neighbor_perm(e, f);
        for (int g = 0; g < input_.ng; ++g) {
          const double* pn = psi_.at(oct, a, nbr, g);
          double* out = lag_.row(oct, a, static_cast<int>(slot), g);
          for (int j = 0; j < nf; ++j) out[j] = pn[perm[j]];
        }
      }
    }
}

void TransportSolver::sweep() {
  OBS_SPAN("solver.sweep", "elements", disc_->num_elements());
  phi_old_ = phi_;
  if (lag_.active()) capture_lag_snapshot();
  SweepState state = make_state();
  sweeper_.sweep(state);
  assemble_solve_seconds_ += sweeper_.last_sweep_seconds();
  solve_seconds_ += sweeper_.last_solve_seconds();
  count_sweep(sweeper_.last_sweep_seconds());
  if (input_.any_reflective()) apply_reflective_boundaries();
}

void TransportSolver::sweep_frozen_coupling() {
  OBS_SPAN("solver.sweep", "elements", disc_->num_elements());
  SweepState state = make_state();
  sweeper_.sweep(state);
  assemble_solve_seconds_ += sweeper_.last_sweep_seconds();
  solve_seconds_ += sweeper_.last_solve_seconds();
  count_sweep(sweeper_.last_sweep_seconds());
}

void TransportSolver::sweep_begin(bool frozen_coupling) {
  if (!frozen_coupling) {
    phi_old_ = phi_;
    if (lag_.active()) capture_lag_snapshot();
  }
  SweepState state = make_state();
  sweeper_.sweep_begin(state);
}

void TransportSolver::sweep_octant(int oct) {
  SweepState state = make_state();
  sweeper_.sweep_octant(state, oct);
}

void TransportSolver::sweep_end(bool frozen_coupling) {
  sweeper_.sweep_end();
  assemble_solve_seconds_ += sweeper_.last_sweep_seconds();
  solve_seconds_ += sweeper_.last_solve_seconds();
  if (!frozen_coupling && input_.any_reflective())
    apply_reflective_boundaries();
}

void TransportSolver::refresh_lagged_couplings() {
  if (input_.any_reflective()) apply_reflective_boundaries();
  if (lag_.active()) capture_lag_snapshot();
}

void TransportSolver::apply_reflective_boundaries() {
  // Specular reflection off the (untwisted) domain planes: the outgoing
  // trace of direction Omega feeds the incoming slot of the direction with
  // the face-normal component flipped, which is the same angle index in
  // the axis-mirrored octant. One sweep of lag — the reflected inflow
  // converges with the source iteration, like the scattering source.
  const mesh::HexMesh& mesh = disc_->mesh();
  const int nang = disc_->nang();
  const int nf = disc_->nodes_per_face();
  for (const auto& [e, f] : mesh.boundary_faces()) {
    const int side = mesh.boundary_kind(e, f);
    if (side < 0 || side >= 6) continue;  // remote faces keep halo data
    if (input_.boundary[side] != snap::Input::Bc::Reflective) continue;
    const int axis = side / 2;
    const int bface = mesh.boundary_face_id(e, f);
    const int* fn = disc_->integrals().face_nodes(f);
    for (int oct = 0; oct < angular::kOctants; ++oct) {
      // Octant bit set means negative component; the outgoing side of a
      // +axis boundary is the positive (bit clear) octant and vice versa.
      const bool outgoing = ((oct >> axis) & 1) == (side % 2 == 0 ? 1 : 0);
      if (!outgoing) continue;
      const int mirror = oct ^ (1 << axis);
      for (int a = 0; a < nang; ++a)
        for (int g = 0; g < input_.ng; ++g) {
          const double* ps = psi_.at(oct, a, e, g);
          double* target = bc_.at(bface, mirror, a, g);
          for (int j = 0; j < nf; ++j) target[j] = ps[fn[j]];
        }
    }
  }
}

double TransportSolver::inner_change() const {
  return max_relative_change(phi_, phi_old_);
}

IterationResult TransportSolver::run() {
  if (input_.iteration_scheme == snap::IterationScheme::Gmres)
    return accel::run_gmres(*this);

  IterationResult result;
  Stopwatch total;
  total.start();

  NodalField phi_outer = phi_;
  for (int outer = 0; outer < input_.oitm; ++outer) {
    if (observer_ != nullptr) observer_->on_outer_begin(outer);
    update_outer_source();
    phi_outer = phi_;
    for (int inner = 0; inner < input_.iitm; ++inner) {
      update_inner_source();
      sweep();
      ++result.inners;
      ++result.sweeps;
      result.final_inner_change = inner_change();
      result.inner_history.push_back(result.final_inner_change);
      if (observer_ != nullptr)
        observer_->on_inner(result.inners - 1, result.sweeps,
                            result.final_inner_change);
      if (!input_.fixed_iterations &&
          result.final_inner_change < input_.epsi)
        break;
    }
    ++result.outers;
    result.final_outer_change = max_relative_change(phi_, phi_outer);
    // SNAP's outer test is a factor 100 looser than the inner epsi.
    if (result.final_outer_change < 100.0 * input_.epsi &&
        result.final_inner_change < input_.epsi) {
      result.converged = true;
    } else {
      result.converged = false;
    }
    if (observer_ != nullptr)
      observer_->on_outer_end(outer, result.final_outer_change,
                              result.converged);
    if (result.converged && !input_.fixed_iterations) break;
  }

  result.total_seconds = total.stop();
  result.assemble_solve_seconds = assemble_solve_seconds_;
  result.solve_seconds = solve_seconds_;
  return result;
}

BoundaryAngularFlux& TransportSolver::boundary_values() {
  if (!bc_.active()) {
    bc_ = BoundaryAngularFlux(disc_->mesh().num_boundary_faces(), disc_->nang(),
                              input_.ng, disc_->nodes_per_face());
  }
  return bc_;
}

AngularFlux& TransportSolver::angular_source() {
  if (!qang_) {
    qang_ = std::make_unique<AngularFlux>(input_.layout, disc_->nang(),
                                          disc_->num_elements(), input_.ng,
                                          disc_->num_nodes());
  }
  return *qang_;
}

void TransportSolver::enable_preassembly(PreassembledOperator::Mode mode) {
  pre_ = std::make_shared<const PreassembledOperator>(assembler_, mode);
}

void TransportSolver::disable_preassembly() { pre_.reset(); }

void TransportSolver::set_preassembly(
    std::shared_ptr<const PreassembledOperator> pre) {
  if (pre != nullptr) {
    require(pre->nang() == disc_->nang() &&
                pre->num_elements() == disc_->num_elements() &&
                pre->num_groups() == problem_.xs.ng &&
                pre->num_nodes() == disc_->num_nodes(),
            "set_preassembly: operator dimensions do not match this "
            "solver's discretisation");
  }
  pre_ = std::move(pre);
}

BalanceReport TransportSolver::balance() const {
  return compute_balance(*disc_, problem_, psi_, phi_,
                         bc_.active() ? &bc_ : nullptr, qang_.get());
}

}  // namespace unsnap::core
