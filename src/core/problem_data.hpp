#pragma once

#include <vector>

#include "core/discretization.hpp"
#include "snap/data.hpp"

namespace unsnap::core {

/// Material data mapped onto the mesh: per-(element, group) cross sections
/// flattened for the assembly kernel plus the external source. Built from
/// the SNAP-style generators; the kernel never chases the material
/// indirection at solve time.
struct ProblemData {
  ProblemData(const Discretization& disc, const snap::Input& input);
  /// Directly from components (tests build bespoke problems this way).
  ProblemData(const Discretization& disc, snap::CrossSections xs,
              std::vector<int> material, NDArray<double, 2> qext);

  snap::CrossSections xs;
  std::vector<int> material;     // per element
  NDArray<double, 2> sigt_eg;    // [e][g]
  NDArray<double, 2> siga_eg;    // [e][g]
  NDArray<double, 2> qext;       // [e][g] isotropic, constant per element

 private:
  void flatten(const Discretization& disc);
};

}  // namespace unsnap::core
