#pragma once

#include "core/discretization.hpp"
#include "core/flux_storage.hpp"
#include "core/problem_data.hpp"

namespace unsnap::core {

/// SNAP-style source construction (paper Fig. 2 / §II): the outer source
/// couples energy groups through the scattering transfer matrix with
/// previous-outer fluxes (Jacobi in energy); the inner source adds the
/// within-group scattering with the latest flux. All sources here are
/// isotropic (the paper's evaluation uses isotropic scattering).
class SourceUpdater {
 public:
  SourceUpdater(const Discretization& disc, const ProblemData& problem)
      : disc_(&disc), problem_(&problem) {}

  /// qout(e,g,:) = qext(e,g) + sum_{g' != g} slgg(mat, g', g) phi(e,g',:).
  void update_outer(const NodalField& phi, NodalField& qout) const;

  /// qin(e,g,:) = qout(e,g,:) + slgg(mat, g, g) phi(e,g,:).
  void update_inner(const NodalField& phi, const NodalField& qout,
                    NodalField& qin) const;

  /// Higher-moment analogues for anisotropic scattering (nmom > 1): the
  /// source moment of flat index m uses the l = degree(m) transfer matrix
  /// slgg_hi. Vectors hold the count-1 moments above l = 0.
  void update_outer_moments(const std::vector<NodalField>& phi_hi,
                            std::vector<NodalField>& qout_hi) const;
  void update_inner_moments(const std::vector<NodalField>& phi_hi,
                            const std::vector<NodalField>& qout_hi,
                            std::vector<NodalField>& qin_hi) const;

 private:
  const Discretization* disc_;
  const ProblemData* problem_;
};

/// SNAP's pointwise convergence measure: max over all unknowns of
/// |new - old| / |old|, falling back to the absolute difference where the
/// old value is below `floor`. Parallel reduction.
[[nodiscard]] double max_relative_change(const NodalField& now,
                                         const NodalField& before,
                                         double floor = 1e-12);

}  // namespace unsnap::core
