#pragma once

#include "core/discretization.hpp"
#include "core/flux_storage.hpp"
#include "core/problem_data.hpp"

namespace unsnap::core {

/// Global neutron balance at the current iterate. At convergence of the
/// source iterations, production must equal removal:
///   external source + boundary inflow = absorption + boundary leakage,
/// because the within-group and group-transfer scattering cancel exactly
/// (the transfer rows sum to sigs). The residual is the standard
/// end-to-end correctness diagnostic for transport codes.
struct BalanceReport {
  double source = 0.0;       // Int q_ext dV (+ angular MMS source if any)
  double inflow = 0.0;       // gain through prescribed boundary flux
  double absorption = 0.0;   // Int sigma_a phi dV
  double leakage = 0.0;      // outflow through the domain boundary

  [[nodiscard]] double residual() const {
    return source + inflow - absorption - leakage;
  }
  [[nodiscard]] double relative() const {
    const double scale = source + inflow;
    return scale > 0.0 ? residual() / scale : residual();
  }
};

[[nodiscard]] BalanceReport compute_balance(const Discretization& disc,
                                            const ProblemData& problem,
                                            const AngularFlux& psi,
                                            const NodalField& phi,
                                            const BoundaryAngularFlux* bc,
                                            const AngularFlux* qang);

}  // namespace unsnap::core
