#pragma once

#include <vector>

#include "core/discretization.hpp"
#include "core/flux_storage.hpp"
#include "core/problem_data.hpp"

namespace unsnap::core {

/// Global neutron balance at the current iterate. At convergence of the
/// source iterations, production must equal removal:
///   external source + inflow + fission/k = absorption + leakage,
/// because the within-group and group-transfer scattering cancel exactly
/// (the transfer rows sum to sigs). The residual is the standard
/// end-to-end correctness diagnostic for transport codes. The fission
/// term is zero outside `mode = keff`, where the k-eigenvalue driver
/// fills it with the normalised production (1/k) Int nu sigf phi dV.
///
/// Each ledger entry also carries its per-group breakdown (same
/// accumulation, bucketed by energy group) so a multigroup balance is
/// auditable group by group — the group totals are accumulated directly,
/// not by summing the buckets, so their values are unchanged from the
/// historical single-ledger report.
struct BalanceReport {
  double source = 0.0;       // Int q_ext dV (+ angular MMS source if any)
  double inflow = 0.0;       // gain through prescribed boundary flux
  double fission = 0.0;      // (1/k) Int nu sigf phi dV (keff mode)
  double absorption = 0.0;   // Int sigma_a phi dV
  double leakage = 0.0;      // outflow through the domain boundary

  std::vector<double> group_source;      // [g]
  std::vector<double> group_inflow;      // [g]
  std::vector<double> group_fission;     // [g]
  std::vector<double> group_absorption;  // [g]
  std::vector<double> group_leakage;     // [g]

  [[nodiscard]] int num_groups() const {
    return static_cast<int>(group_source.size());
  }
  [[nodiscard]] double residual() const {
    return source + inflow + fission - absorption - leakage;
  }
  [[nodiscard]] double relative() const {
    const double scale = source + inflow + fission;
    return scale > 0.0 ? residual() / scale : residual();
  }
};

[[nodiscard]] BalanceReport compute_balance(const Discretization& disc,
                                            const ProblemData& problem,
                                            const AngularFlux& psi,
                                            const NodalField& phi,
                                            const BoundaryAngularFlux* bc,
                                            const AngularFlux* qang);

}  // namespace unsnap::core
