#pragma once

#include <vector>

#include "core/discretization.hpp"
#include "core/flux_storage.hpp"
#include "core/problem_data.hpp"
#include "linalg/solver.hpp"
#include "util/timer.hpp"

namespace unsnap::core {

class PreassembledOperator;

/// Per-thread scratch for the assemble/solve kernel; allocated once per
/// sweep thread so the hot loop never touches the allocator.
struct AssemblyContext {
  linalg::Matrix a;                  // n x n system matrix
  AlignedVector<double> rhs;         // n
  AlignedVector<double> upwind;      // nf gathered neighbour trace
  AlignedVector<double> qtmp;        // n source staging (angular source)
  linalg::SolveWorkspace workspace;
  double solve_seconds = 0.0;        // accumulated when timing is enabled
  Stopwatch solve_watch;

  void resize(int n, int nf);
};

/// Compact previous-iterate storage for cycle-broken (lagged) faces: one
/// face trace (nodes-per-face values, pre-gathered into the downstream
/// element's face-node order) per lagged face of each angle's schedule,
/// per group. The transport solver captures it at sweep start and the
/// assembly kernel reads it instead of the neighbour's live psi, so
/// lagged faces have deterministic previous-iterate semantics at the
/// cost of a few hundred doubles instead of a full psi copy.
class LagSnapshot {
 public:
  LagSnapshot() = default;
  /// Size from the schedule set's lagged faces; empty (inactive) when no
  /// schedule broke a cycle.
  LagSnapshot(const sweep::ScheduleSet& schedules, int ng, int nf);

  [[nodiscard]] bool active() const { return !data_.empty(); }
  [[nodiscard]] double* row(int oct, int a, int slot, int g) {
    return data_.data() + offset(oct, a, slot, g);
  }
  [[nodiscard]] const double* row(int oct, int a, int slot, int g) const {
    return data_.data() + offset(oct, a, slot, g);
  }

 private:
  [[nodiscard]] std::size_t offset(int oct, int a, int slot, int g) const {
    return base_[static_cast<std::size_t>(oct) * nang_ + a] +
           (static_cast<std::size_t>(slot) * ng_ + g) * nf_;
  }
  std::size_t nang_ = 0, ng_ = 0, nf_ = 0;
  std::vector<std::size_t> base_;  // per (octant, angle)
  std::vector<double> data_;
};

/// References to the solution state one sweep works on. qang (per-angle
/// source) and bc (prescribed boundary flux) are optional; pre switches the
/// kernel to the pre-assembled operator path (no matrix assembly/solve).
///
/// Anisotropic scattering (nmom > 1) adds the higher flux/source moment
/// fields and per-ordinate spherical-harmonic coefficient tables; the
/// sweeper points ylm_acc/ylm_src at the current angle's row before each
/// bucket. Moment index m here is the flat (l, m) index minus one (the
/// l = 0 moment is phi/qin themselves).
struct SweepState {
  AngularFlux* psi = nullptr;
  NodalField* phi = nullptr;
  /// Schedule of the ordinate currently being swept (set per angle by the
  /// sweeper). Together with lag it gives cycle-broken (lagged) faces
  /// well-defined previous-iterate semantics: without the snapshot a
  /// lagged read would return whatever the neighbour holds right now —
  /// racy under element threading when both ends share a bucket, and
  /// schedule-order dependent even serially.
  const sweep::SweepSchedule* schedule = nullptr;
  /// Previous-iterate traces for lagged-face reads (null when the
  /// schedule set broke no cycles; lagged faces then never occur).
  const LagSnapshot* lag = nullptr;
  const NodalField* qin = nullptr;
  const AngularFlux* qang = nullptr;
  const BoundaryAngularFlux* bc = nullptr;
  const PreassembledOperator* pre = nullptr;
  std::vector<NodalField>* phi_hi = nullptr;        // count-1 fields
  const std::vector<NodalField>* qmom_hi = nullptr; // count-1 fields
  const double* ylm_acc = nullptr;  // Y_lm(omega), count entries
  const double* ylm_src = nullptr;  // (2l+1) Y_lm(omega), count entries
  int moment_count = 1;
};

/// The central computation of the paper (Fig. 2): for one
/// (octant, angle, element, group), build the small dense system
///   A = sigma_t M - Omega . G + sum_{outflow f} Omega . F_f
///   b = M (q_in + q_ang) - sum_{inflow f} Omega . F_f psi_upwind
/// solve A psi = b, store psi and accumulate the scalar flux.
class Assembler {
 public:
  Assembler(const Discretization& disc, const ProblemData& problem)
      : disc_(&disc), problem_(&problem) {}

  /// Assemble the matrix only (shared with the pre-assembly engine and the
  /// assembly-cost benchmarks). `a` must hold n*n doubles.
  void assemble_matrix(double* a, int e, int g, const Vec3& omega) const;

  /// Assemble the right-hand side only into ctx.rhs.
  void assemble_rhs(AssemblyContext& ctx, const SweepState& state, int oct,
                    int a, int e, int g, const Vec3& omega) const;

  /// Full kernel: assemble, solve (or apply the pre-assembled inverse),
  /// scatter psi, accumulate phi with quadrature weight `weight`.
  /// atomic_phi selects atomic accumulation (angle-threaded scheme);
  /// time_solve accumulates pure solve time into ctx.solve_seconds.
  void process(AssemblyContext& ctx, const SweepState& state, int oct, int a,
               int e, int g, const Vec3& omega, double weight,
               linalg::SolverKind solver, bool atomic_phi,
               bool time_solve) const;

  [[nodiscard]] const Discretization& discretization() const { return *disc_; }
  [[nodiscard]] const ProblemData& problem() const { return *problem_; }

 private:
  const Discretization* disc_;
  const ProblemData* problem_;
};

}  // namespace unsnap::core
