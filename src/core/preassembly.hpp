#pragma once

#include <string>

#include "core/assembler.hpp"

namespace unsnap::core {

/// Pre-assembled matrix mode (paper §IV-B-1, listed as future work): since
/// A depends only on (angle, group, element) — not on the iteration — it
/// can be factored or explicitly inverted once and reused every inner/outer
/// iteration, trading a factor-(p+1)^3-squared memory blow-up for solves
/// that become triangular applies or plain matvecs.
class PreassembledOperator {
 public:
  enum class Mode {
    FactoredLu,       // store LU factors + pivots, apply = two triangular solves
    ExplicitInverse,  // store A^{-1}, apply = one matvec
  };

  PreassembledOperator(const Assembler& assembler, Mode mode);

  /// Solve the system for ctx.rhs and return a pointer to the solution.
  /// FactoredLu solves in place (returns ctx.rhs); ExplicitInverse runs a
  /// contiguous matvec into ctx.qtmp and returns that — no copy-back, the
  /// caller scatters psi/phi straight from the returned row.
  const double* apply(AssemblyContext& ctx, int oct, int a, int e,
                      int g) const;

  [[nodiscard]] Mode mode() const { return mode_; }
  /// Total storage, the memory-footprint cost the paper warns about.
  [[nodiscard]] std::size_t bytes() const;

  // Dimensions of the discretisation the operator was built for, so a
  // shared operator can be validated before injection into another solver.
  [[nodiscard]] int nang() const { return nang_; }
  [[nodiscard]] int num_elements() const { return ne_; }
  [[nodiscard]] int num_groups() const { return ng_; }
  [[nodiscard]] int num_nodes() const { return n_; }

  [[nodiscard]] static std::string to_string(Mode mode) {
    return mode == Mode::FactoredLu ? "factored-lu" : "explicit-inverse";
  }

 private:
  Mode mode_;
  int nang_, ne_, ng_, n_;
  NDArray<double, 2> mats_;   // [system][n*n]
  NDArray<int, 2> pivots_;    // [system][n], FactoredLu only

  [[nodiscard]] std::size_t index(int oct, int a, int e, int g) const {
    return ((static_cast<std::size_t>(oct) * nang_ + a) * ne_ + e) * ng_ + g;
  }
};

}  // namespace unsnap::core
