#pragma once

#include <string>

#include "core/assembler.hpp"

namespace unsnap::core {

/// Pre-assembled matrix mode (paper §IV-B-1, listed as future work): since
/// A depends only on (angle, group, element) — not on the iteration — it
/// can be factored or explicitly inverted once and reused every inner/outer
/// iteration, trading a factor-(p+1)^3-squared memory blow-up for solves
/// that become triangular applies or plain matvecs.
class PreassembledOperator {
 public:
  enum class Mode {
    FactoredLu,       // store LU factors + pivots, apply = two triangular solves
    ExplicitInverse,  // store A^{-1}, apply = one matvec
  };

  PreassembledOperator(const Assembler& assembler, Mode mode);

  /// Solve in place: ctx.rhs holds b on entry and psi on return.
  void apply(AssemblyContext& ctx, int oct, int a, int e, int g) const;

  [[nodiscard]] Mode mode() const { return mode_; }
  /// Total storage, the memory-footprint cost the paper warns about.
  [[nodiscard]] std::size_t bytes() const;

  [[nodiscard]] static std::string to_string(Mode mode) {
    return mode == Mode::FactoredLu ? "factored-lu" : "explicit-inverse";
  }

 private:
  Mode mode_;
  int nang_, ne_, ng_, n_;
  NDArray<double, 2> mats_;   // [system][n*n]
  NDArray<int, 2> pivots_;    // [system][n], FactoredLu only

  [[nodiscard]] std::size_t index(int oct, int a, int e, int g) const {
    return ((static_cast<std::size_t>(oct) * nang_ + a) * ne_ + e) * ng_ + g;
  }
};

}  // namespace unsnap::core
