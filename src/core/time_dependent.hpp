#pragma once

#include <memory>
#include <vector>

#include "core/transport_solver.hpp"

namespace unsnap::core {

/// Backward-Euler time integration of the transport equation — SNAP's
/// optional time dimension (the paper solves the stationary problem; this
/// is the natural extension a production code carries):
///
///   (1/(v_g dt)) (psi^{n+1} - psi^n) + Omega . grad psi^{n+1}
///       + sigt psi^{n+1} = q + scattering(psi^{n+1})
///
/// folds into the stationary solver as sigt' = sigt + 1/(v_g dt) plus a
/// per-angle source psi^n / (v_g dt); every step runs the standard source
/// iteration warm-started from the previous step.
class TimeDependentSolver {
 public:
  struct StepResult {
    IterationResult iteration;
    double time = 0.0;          // after the step
    double total_density = 0.0; // sum_g (1/v_g) Int phi_g dV after the step
  };

  /// `velocities` holds one particle speed per group; dt is the step.
  TimeDependentSolver(std::shared_ptr<const Discretization> disc,
                      const snap::Input& input,
                      std::vector<double> velocities, double dt);

  /// Pre-built problem data (the [xs] library route): same integration,
  /// but the cross sections/source come from `problem` instead of the
  /// generated snap::Input tables. Library group velocities pair with this
  /// overload.
  TimeDependentSolver(std::shared_ptr<const Discretization> disc,
                      const snap::Input& input, const ProblemData& problem,
                      std::vector<double> velocities, double dt);

  /// SNAP-style generated speeds, fastest group first: v_g = 1 / (1 + g/2).
  [[nodiscard]] static std::vector<double> snap_velocities(int ng);

  /// Set a uniform isotropic initial angular flux psi = value (also
  /// refreshes the scalar flux to match).
  void set_initial_condition(double value);

  /// Advance one time step.
  StepResult step();

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] double dt() const { return dt_; }
  /// Total particle density sum_g (1/v_g) Int phi_g dV of the current state.
  [[nodiscard]] double total_density() const;

  [[nodiscard]] TransportSolver& solver() { return *solver_; }
  [[nodiscard]] const TransportSolver& solver() const { return *solver_; }

 private:
  std::vector<double> velocities_;
  double dt_;
  double time_ = 0.0;
  std::unique_ptr<TransportSolver> solver_;

  void fold_time_absorption(int ng);
  void refresh_time_source();
};

}  // namespace unsnap::core
