#include "core/balance.hpp"

namespace unsnap::core {

BalanceReport compute_balance(const Discretization& disc,
                              const ProblemData& problem,
                              const AngularFlux& psi, const NodalField& phi,
                              const BoundaryAngularFlux* bc,
                              const AngularFlux* qang) {
  const ElementIntegrals& ints = disc.integrals();
  const mesh::HexMesh& mesh = disc.mesh();
  const angular::QuadratureSet& quad = disc.quadrature();
  const int ne = disc.num_elements();
  const int ng = problem.xs.ng;
  const int n = disc.num_nodes();
  const int nf = disc.nodes_per_face();
  const int nang = quad.per_octant();

  BalanceReport report;
  const auto gc = static_cast<std::size_t>(ng);
  report.group_source.assign(gc, 0.0);
  report.group_inflow.assign(gc, 0.0);
  report.group_fission.assign(gc, 0.0);
  report.group_absorption.assign(gc, 0.0);
  report.group_leakage.assign(gc, 0.0);

  // Volume terms: external source and absorption, contracted against the
  // nodal integration weights w_j = Int phi_j dV. Totals accumulate
  // directly (not from the group buckets) so they match the historical
  // single-ledger values bitwise.
  for (int e = 0; e < ne; ++e) {
    const double* w = ints.node_weights(e);
    for (int g = 0; g < ng; ++g) {
      const double src = problem.qext(e, g) * ints.volume(e);
      report.source += src;
      report.group_source[static_cast<std::size_t>(g)] += src;
      const double* ph = phi.at(e, g);
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += w[i] * ph[i];
      const double abs = problem.siga_eg(e, g) * acc;
      report.absorption += abs;
      report.group_absorption[static_cast<std::size_t>(g)] += abs;
    }
  }

  // Angular (manufactured) source: integrate with the quadrature weights.
  if (qang != nullptr) {
    for (int oct = 0; oct < angular::kOctants; ++oct)
      for (int a = 0; a < nang; ++a) {
        const double wa = quad.weight(a);
        for (int e = 0; e < ne; ++e) {
          const double* w = ints.node_weights(e);
          for (int g = 0; g < ng; ++g) {
            const double* q = qang->at(oct, a, e, g);
            double acc = 0.0;
            for (int i = 0; i < n; ++i) acc += w[i] * q[i];
            report.source += wa * acc;
            report.group_source[static_cast<std::size_t>(g)] += wa * acc;
          }
        }
      }
  }

  // Boundary terms: for every boundary face and ordinate, the outward
  // current Int_f (Omega . n) psi-hat dS, with psi-hat the element's own
  // trace on outflow faces and the prescribed value (if any) on inflow.
  // Column sums l_{d,j} = Int_f n_d phi_j dS give the integral directly.
  for (const auto& [e, f] : mesh.boundary_faces()) {
    const int* fn = ints.face_nodes(f);
    const Vec3 nrm = ints.face_normal(e, f);
    const int bface = mesh.boundary_face_id(e, f);
    for (int oct = 0; oct < angular::kOctants; ++oct) {
      for (int a = 0; a < nang; ++a) {
        const Vec3 omega = quad.direction(oct, a);
        const double s =
            nrm[0] * omega[0] + nrm[1] * omega[1] + nrm[2] * omega[2];
        const double wa = quad.weight(a);
        const double* lx = ints.face_col_sums(e, f, 0);
        const double* ly = ints.face_col_sums(e, f, 1);
        const double* lz = ints.face_col_sums(e, f, 2);
        for (int g = 0; g < ng; ++g) {
          double current = 0.0;
          if (s >= 0.0) {
            const double* ps = psi.at(oct, a, e, g);
            for (int j = 0; j < nf; ++j)
              current += (omega[0] * lx[j] + omega[1] * ly[j] +
                          omega[2] * lz[j]) *
                         ps[fn[j]];
            report.leakage += wa * current;
            report.group_leakage[static_cast<std::size_t>(g)] +=
                wa * current;
          } else if (bc != nullptr && bc->active()) {
            const double* vals = bc->at(bface, oct, a, g);
            for (int j = 0; j < nf; ++j)
              current += (omega[0] * lx[j] + omega[1] * ly[j] +
                          omega[2] * lz[j]) *
                         vals[j];
            report.inflow -= wa * current;  // s < 0 => current < 0 => gain
            report.group_inflow[static_cast<std::size_t>(g)] -=
                wa * current;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace unsnap::core
