#include "core/sweeper.hpp"

#include <omp.h>

#include <algorithm>

#include "angular/harmonics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

namespace unsnap::core {

Sweeper::Sweeper(const Assembler& assembler, SweepConfig config)
    : assembler_(&assembler), config_(config) {
  require(config_.ng >= 1, "SweepConfig: ng must be positive");
  require(config_.nmom >= 1, "SweepConfig: nmom must be positive");
  const int n = assembler.discretization().num_nodes();
  const int nf = assembler.discretization().nodes_per_face();
  // Size the per-thread scratch from a stable upper bound, not just the
  // current omp_get_max_threads(): callers may raise the OpenMP thread
  // count after construction, and contexts_[omp_get_thread_num()] must
  // never index out of bounds (ensure_contexts() re-checks per sweep as a
  // backstop for counts above even the hardware concurrency).
  contexts_.resize(static_cast<std::size_t>(
      std::max(omp_get_max_threads(), util::hardware_threads())));
  for (auto& ctx : contexts_) ctx.resize(n, nf);

  if (config_.nmom > 1) {
    const angular::SphericalHarmonics sh(config_.nmom - 1);
    const angular::QuadratureSet& quad =
        assembler.discretization().quadrature();
    const auto count = static_cast<std::size_t>(sh.count());
    const auto nang = static_cast<std::size_t>(quad.per_octant());
    ylm_acc_.resize({angular::kOctants, nang, count});
    ylm_src_.resize({angular::kOctants, nang, count});
    for (int oct = 0; oct < angular::kOctants; ++oct)
      for (int a = 0; a < quad.per_octant(); ++a) {
        sh.evaluate(quad.direction(oct, a), &ylm_acc_(oct, a, 0));
        for (int m = 0; m < sh.count(); ++m)
          ylm_src_(oct, a, m) =
              (2 * sh.l_of(m) + 1) * ylm_acc_(oct, a, m);
      }
  }
}

void Sweeper::sweep_angle(SweepState state, int oct, int a) {
  const Discretization& disc = assembler_->discretization();
  const sweep::SweepSchedule& schedule = disc.schedules().get(oct, a);
  const Vec3 omega = disc.quadrature().direction(oct, a);
  const double weight = disc.quadrature().weight(a);
  const int ng = config_.ng;
  const auto solver = config_.solver;
  const bool time_solve = config_.time_solve;
  const Assembler& assembler = *assembler_;
  state.schedule = &schedule;
  if (config_.nmom > 1) {
    state.moment_count = config_.nmom * config_.nmom;
    state.ylm_acc = &ylm_acc_(oct, a, 0);
    state.ylm_src = &ylm_src_(oct, a, 0);
  }

  for (int b = 0; b < schedule.num_buckets(); ++b) {
    const std::span<const int> bucket = schedule.bucket(b);
    const int nb = static_cast<int>(bucket.size());

    switch (config_.scheme) {
      case ConcurrencyScheme::Serial:
        // Loop order follows the configured layout for cache coherence.
        if (config_.loop_order == FluxLayout::AngleElementGroup) {
          for (int i = 0; i < nb; ++i)
            for (int g = 0; g < ng; ++g)
              assembler.process(contexts_[0], state, oct, a, bucket[i], g,
                                omega, weight, solver, false, time_solve);
        } else {
          for (int g = 0; g < ng; ++g)
            for (int i = 0; i < nb; ++i)
              assembler.process(contexts_[0], state, oct, a, bucket[i], g,
                                omega, weight, solver, false, time_solve);
        }
        break;

      case ConcurrencyScheme::Elements:
        // Thread the independent elements of the bucket; groups serial
        // inside each thread ("angle/element/group" with elements bold).
#pragma omp parallel for schedule(static)
        for (int i = 0; i < nb; ++i) {
          AssemblyContext& ctx = contexts_[omp_get_thread_num()];
          for (int g = 0; g < ng; ++g)
            assembler.process(ctx, state, oct, a, bucket[i], g, omega,
                              weight, solver, false, time_solve);
        }
        break;

      case ConcurrencyScheme::Groups:
        // Thread energy groups; elements serial inside each thread.
#pragma omp parallel for schedule(static)
        for (int g = 0; g < ng; ++g) {
          AssemblyContext& ctx = contexts_[omp_get_thread_num()];
          for (int i = 0; i < nb; ++i)
            assembler.process(ctx, state, oct, a, bucket[i], g, omega,
                              weight, solver, false, time_solve);
        }
        break;

      case ConcurrencyScheme::ElementsGroups: {
        // Collapse the element and group loops (the paper's best scheme).
        // The decode order reproduces the OpenMP collapse semantics for
        // the configured loop order: AEG iterates groups fastest, AGE
        // iterates elements fastest.
        const long total = static_cast<long>(nb) * ng;
        const bool aeg = config_.loop_order == FluxLayout::AngleElementGroup;
#pragma omp parallel for schedule(static)
        for (long idx = 0; idx < total; ++idx) {
          AssemblyContext& ctx = contexts_[omp_get_thread_num()];
          const int i = aeg ? static_cast<int>(idx / ng)
                            : static_cast<int>(idx % nb);
          const int g = aeg ? static_cast<int>(idx % ng)
                            : static_cast<int>(idx / nb);
          assembler.process(ctx, state, oct, a, bucket[i], g, omega, weight,
                            solver, false, time_solve);
        }
        break;
      }

      case ConcurrencyScheme::AnglesAtomic:
      case ConcurrencyScheme::AngleBatch:
        UNSNAP_ASSERT(false);  // handled at octant level
        break;
    }
  }
}

void Sweeper::sweep_octant_batched(const SweepState& state, int oct) {
  // Angle batching over same-signature schedules: angles sharing a
  // dependency signature share a bucket list, so one walk of that list
  // serves the whole batch. Threads own elements — each thread solves its
  // element for every batched angle and group, so the scalar-flux row of
  // an element is only ever touched by one thread (no atomics) and every
  // bucket exposes |bucket| x |batch| x ng work units behind a single
  // barrier instead of |bucket| x ng behind |batch| barriers.
  const Discretization& disc = assembler_->discretization();
  const sweep::ScheduleSet& schedules = disc.schedules();
  const int ng = config_.ng;
  const auto solver = config_.solver;
  const bool time_solve = config_.time_solve;
  const Assembler& assembler = *assembler_;

  for (const std::vector<int>& batch : schedules.batches(oct)) {
    const sweep::SweepSchedule& schedule = schedules.get(oct, batch[0]);
    const int na = static_cast<int>(batch.size());
    // Build the per-angle table once per batch: the SweepState copy (with
    // schedule and ylm rows bound), direction and weight of every batched
    // angle. The hot element loop below then just walks the table —
    // without this, each of the |bucket| x |batch| inner iterations
    // re-copied the SweepState and re-derived the quadrature lookups.
    batch_angles_.clear();
    batch_angles_.reserve(static_cast<std::size_t>(na));
    for (int k = 0; k < na; ++k) {
      const int a = batch[k];
      BatchAngle ba;
      ba.state = state;  // per-angle coefficient rows
      ba.state.schedule = &schedule;
      if (config_.nmom > 1) {
        ba.state.moment_count = config_.nmom * config_.nmom;
        ba.state.ylm_acc = &ylm_acc_(oct, a, 0);
        ba.state.ylm_src = &ylm_src_(oct, a, 0);
      }
      ba.omega = disc.quadrature().direction(oct, a);
      ba.weight = disc.quadrature().weight(a);
      ba.a = a;
      batch_angles_.push_back(ba);
    }
    for (int b = 0; b < schedule.num_buckets(); ++b) {
      const std::span<const int> bucket = schedule.bucket(b);
      const int nb = static_cast<int>(bucket.size());
      // Explicit parallel region (not `parallel for`) so every worker can
      // open its own "sweep.batch" span — the per-thread timeline is the
      // whole point of the trace. The `for schedule(static)` inside hands
      // out the identical iteration blocks a combined `parallel for
      // schedule(static)` would, so flux accumulation order (and thus the
      // golden digests) is unchanged.
#pragma omp parallel
      {
        OBS_SPAN("sweep.batch", "bucket", b, "elements", nb);
        AssemblyContext& ctx = contexts_[omp_get_thread_num()];
#pragma omp for schedule(static)
        for (int i = 0; i < nb; ++i) {
          const int e = bucket[i];
          for (const BatchAngle& ba : batch_angles_) {
            for (int g = 0; g < ng; ++g)
              assembler.process(ctx, ba.state, oct, ba.a, e, g, ba.omega,
                                ba.weight, solver, false, time_solve);
          }
        }
      }
    }
  }
}

void Sweeper::sweep_octant_angles_atomic(const SweepState& state, int oct) {
  // Thread over the independent angles of the octant (paper §IV-A-3).
  // Every thread walks its own angle's schedule serially; the shared
  // scalar-flux reduction forces atomic accumulation, which is exactly the
  // non-scaling behaviour the paper reports.
  const Discretization& disc = assembler_->discretization();
  const int nang = disc.nang();
  const int ng = config_.ng;

#pragma omp parallel for schedule(dynamic, 1)
  for (int a = 0; a < nang; ++a) {
    AssemblyContext& ctx = contexts_[omp_get_thread_num()];
    SweepState local = state;  // per-angle coefficient rows
    if (config_.nmom > 1) {
      local.moment_count = config_.nmom * config_.nmom;
      local.ylm_acc = &ylm_acc_(oct, a, 0);
      local.ylm_src = &ylm_src_(oct, a, 0);
    }
    const sweep::SweepSchedule& schedule = disc.schedules().get(oct, a);
    local.schedule = &schedule;
    const Vec3 omega = disc.quadrature().direction(oct, a);
    const double weight = disc.quadrature().weight(a);
    for (int b = 0; b < schedule.num_buckets(); ++b) {
      for (const int e : schedule.bucket(b))
        for (int g = 0; g < ng; ++g)
          assembler_->process(ctx, local, oct, a, e, g, omega, weight,
                              config_.solver, /*atomic_phi=*/true,
                              config_.time_solve);
    }
  }
}

void Sweeper::ensure_contexts() {
  const auto needed = static_cast<std::size_t>(omp_get_max_threads());
  if (needed <= contexts_.size()) return;
  const int n = assembler_->discretization().num_nodes();
  const int nf = assembler_->discretization().nodes_per_face();
  contexts_.resize(needed);
  for (auto& ctx : contexts_)
    if (ctx.rhs.size() != static_cast<std::size_t>(n)) ctx.resize(n, nf);
}

void Sweeper::sweep_begin(SweepState& state) {
  UNSNAP_ASSERT(state.psi != nullptr && state.phi != nullptr &&
                state.qin != nullptr);
  ensure_contexts();
  state.phi->fill(0.0);
  if (state.phi_hi != nullptr)
    for (auto& field : *state.phi_hi) field.fill(0.0);
  for (auto& ctx : contexts_) ctx.solve_seconds = 0.0;
  sweep_seconds_ = 0.0;
}

void Sweeper::sweep_octant(SweepState& state, int oct) {
  OBS_SPAN("sweep.octant", "oct", oct, "elements",
           assembler_->discretization().num_elements());
  Stopwatch watch;
  watch.start();
  const int nang = assembler_->discretization().nang();
  if (config_.scheme == ConcurrencyScheme::AnglesAtomic) {
    sweep_octant_angles_atomic(state, oct);
  } else if (config_.scheme == ConcurrencyScheme::AngleBatch) {
    sweep_octant_batched(state, oct);
  } else {
    for (int a = 0; a < nang; ++a) sweep_angle(state, oct, a);
  }
  sweep_seconds_ += watch.stop();
}

void Sweeper::sweep_end() {
  solve_seconds_ = 0.0;
  for (const auto& ctx : contexts_) solve_seconds_ += ctx.solve_seconds;
}

void Sweeper::sweep(SweepState& state) {
  sweep_begin(state);
  for (int oct = 0; oct < angular::kOctants; ++oct)
    sweep_octant(state, oct);
  sweep_end();
}

}  // namespace unsnap::core
