#include "core/time_dependent.hpp"

#include "util/assert.hpp"

namespace unsnap::core {

std::vector<double> TimeDependentSolver::snap_velocities(int ng) {
  std::vector<double> v(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g) v[g] = 1.0 / (1.0 + 0.5 * g);
  return v;
}

TimeDependentSolver::TimeDependentSolver(
    std::shared_ptr<const Discretization> disc, const snap::Input& input,
    std::vector<double> velocities, double dt)
    : velocities_(std::move(velocities)), dt_(dt) {
  require(dt > 0.0, "TimeDependentSolver: dt must be positive");
  require(static_cast<int>(velocities_.size()) == input.ng,
          "TimeDependentSolver: one velocity per group required");
  for (const double v : velocities_)
    require(v > 0.0, "TimeDependentSolver: velocities must be positive");

  solver_ = std::make_unique<TransportSolver>(std::move(disc), input);
  fold_time_absorption(input.ng);
}

TimeDependentSolver::TimeDependentSolver(
    std::shared_ptr<const Discretization> disc, const snap::Input& input,
    const ProblemData& problem, std::vector<double> velocities, double dt)
    : velocities_(std::move(velocities)), dt_(dt) {
  require(dt > 0.0, "TimeDependentSolver: dt must be positive");
  require(static_cast<int>(velocities_.size()) == input.ng,
          "TimeDependentSolver: one velocity per group required");
  for (const double v : velocities_)
    require(v > 0.0, "TimeDependentSolver: velocities must be positive");

  solver_ = std::make_unique<TransportSolver>(std::move(disc), input, problem);
  fold_time_absorption(input.ng);
}

void TimeDependentSolver::fold_time_absorption(int ng) {
  // sigt' = sigt + 1/(v_g dt). The absorption table stays untouched so
  // balance diagnostics keep reporting the physical absorption.
  ProblemData& problem = solver_->problem();
  const int ne = solver_->discretization().num_elements();
  for (int e = 0; e < ne; ++e)
    for (int g = 0; g < ng; ++g)
      problem.sigt_eg(e, g) += 1.0 / (velocities_[g] * dt_);

  solver_->angular_source();  // allocate; refreshed before every step
}

void TimeDependentSolver::set_initial_condition(double value) {
  solver_->angular_flux().fill(value);
  // Scalar flux of an isotropic field equals the field (weights sum to 1).
  solver_->scalar_flux().fill(value);
}

void TimeDependentSolver::refresh_time_source() {
  const Discretization& disc = solver_->discretization();
  AngularFlux& qang = solver_->angular_source();
  const AngularFlux& psi = solver_->angular_flux();
  const int nang = disc.nang();
  const int ne = disc.num_elements();
  const int ng = solver_->input().ng;
  const int n = disc.num_nodes();

#pragma omp parallel for collapse(2) schedule(static)
  for (int oct = 0; oct < angular::kOctants; ++oct)
    for (int a = 0; a < nang; ++a)
      for (int e = 0; e < ne; ++e)
        for (int g = 0; g < ng; ++g) {
          const double inv_vdt = 1.0 / (velocities_[g] * dt_);
          const double* old = psi.at(oct, a, e, g);
          double* q = qang.at(oct, a, e, g);
#pragma omp simd
          for (int i = 0; i < n; ++i) q[i] = inv_vdt * old[i];
        }
}

TimeDependentSolver::StepResult TimeDependentSolver::step() {
  refresh_time_source();
  StepResult result;
  result.iteration = solver_->run();
  time_ += dt_;
  result.time = time_;
  result.total_density = total_density();
  return result;
}

double TimeDependentSolver::total_density() const {
  const Discretization& disc = solver_->discretization();
  const ElementIntegrals& ints = disc.integrals();
  const NodalField& phi = solver_->scalar_flux();
  const int ng = solver_->input().ng;
  const int n = disc.num_nodes();
  double density = 0.0;
  for (int e = 0; e < disc.num_elements(); ++e) {
    const double* w = ints.node_weights(e);
    for (int g = 0; g < ng; ++g) {
      const double* ph = phi.at(e, g);
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += w[i] * ph[i];
      density += acc / velocities_[g];
    }
  }
  return density;
}

}  // namespace unsnap::core
