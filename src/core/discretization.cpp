#include "core/discretization.hpp"

#include "mesh/mesh_builder.hpp"
#include "mesh/mesh_checks.hpp"
#include "util/assert.hpp"

namespace unsnap::core {

Discretization::Discretization(mesh::HexMesh mesh, int order,
                               angular::QuadratureKind quadrature_kind,
                               int nang, sweep::CycleStrategy cycle_strategy)
    : mesh_(std::move(mesh)),
      ref_(order),
      quadrature_(quadrature_kind, nang),
      integrals_(std::make_unique<ElementIntegrals>(mesh_, ref_)),
      schedules_(std::make_unique<sweep::ScheduleSet>(mesh_, quadrature_,
                                                      cycle_strategy)) {}

namespace {

mesh::HexMesh mesh_from_input(const snap::Input& input) {
  input.validate();
  mesh::MeshOptions options;
  options.dims = input.dims;
  options.extent = {input.extent[0], input.extent[1], input.extent[2]};
  options.twist = input.twist;
  options.shuffle_seed = input.shuffle_seed;
  mesh::HexMesh mesh = mesh::build_brick_mesh(options);
  if (input.validate_mesh) {
    const auto report =
        mesh::check_mesh(mesh, fem::HexReferenceElement(input.order));
    require(report.ok(), "mesh validation failed: " + report.summary());
  }
  return mesh;
}

}  // namespace

Discretization::Discretization(const snap::Input& input)
    : Discretization(mesh_from_input(input), input.order, input.quadrature,
                     input.nang, input.cycle_strategy) {}

}  // namespace unsnap::core
