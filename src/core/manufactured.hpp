#pragma once

#include <functional>

#include "core/transport_solver.hpp"

namespace unsnap::core {

/// Manufactured exact solutions for verification. The angular flux is
/// prescribed as an angle-independent spatial field psi_e(x) (so the exact
/// scalar flux equals psi_e because the quadrature weights sum to 1); the
/// matching per-angle source
///   q(x, Omega, g) = Omega . grad psi_e + sigt_g psi_e
///                    - sum_g' slgg(g' -> g) psi_e
/// and Dirichlet inflow boundary data are injected into a TransportSolver.
///
/// Key property: an order-p element reproduces any psi_e whose composition
/// with the trilinear element map lies in Q_p exactly — in particular any
/// polynomial of total degree <= p in physical coordinates, even on twisted
/// meshes. The convergence-order studies use the trigonometric solution.
class ManufacturedSolution {
 public:
  using ValueFn = std::function<double(const Vec3&)>;
  using GradFn = std::function<Vec3(const Vec3&)>;

  ManufacturedSolution(ValueFn value, GradFn gradient)
      : value_(std::move(value)), gradient_(std::move(gradient)) {}

  /// Random polynomial of total degree `degree` with coefficients drawn
  /// deterministically from `seed`.
  static ManufacturedSolution polynomial(int degree, std::uint64_t seed);

  /// Smooth non-polynomial field c + sin/cos products (never reproduced
  /// exactly; drives the h-convergence studies).
  static ManufacturedSolution trigonometric();

  [[nodiscard]] double value(const Vec3& x) const { return value_(x); }
  [[nodiscard]] Vec3 gradient(const Vec3& x) const { return gradient_(x); }

 private:
  ValueFn value_;
  GradFn gradient_;
};

/// Install the manufactured problem on a solver: zeroes the external
/// isotropic source, fills the per-angle source and the inflow boundary
/// data. The exact solution is the same field in every group.
void apply_manufactured(TransportSolver& solver,
                        const ManufacturedSolution& ms);

/// Max nodal error of the solver's scalar flux against the exact field.
[[nodiscard]] double max_nodal_error(const TransportSolver& solver,
                                     const ManufacturedSolution& ms);

/// L2 (volume-integrated) error of the scalar flux for group g.
[[nodiscard]] double l2_error(const TransportSolver& solver,
                              const ManufacturedSolution& ms, int g = 0);

/// Physical coordinates of every element node (row e, node i), used by the
/// MMS setup and the examples.
[[nodiscard]] std::vector<Vec3> element_node_positions(
    const Discretization& disc, int e);

}  // namespace unsnap::core
