#include "core/manufactured.hpp"

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "util/rng.hpp"

namespace unsnap::core {

ManufacturedSolution ManufacturedSolution::polynomial(int degree,
                                                      std::uint64_t seed) {
  // Monomials x^i y^j z^k with i+j+k <= degree, random coefficients.
  struct Term {
    int i, j, k;
    double c;
  };
  auto terms = std::make_shared<std::vector<Term>>();
  Rng rng(seed);
  for (int i = 0; i <= degree; ++i)
    for (int j = 0; j + i <= degree; ++j)
      for (int k = 0; k + i + j <= degree; ++k)
        terms->push_back({i, j, k, rng.uniform(0.25, 1.0)});

  auto value = [terms](const Vec3& x) {
    double v = 0.0;
    for (const auto& t : *terms)
      v += t.c * std::pow(x[0], t.i) * std::pow(x[1], t.j) *
           std::pow(x[2], t.k);
    return v;
  };
  auto gradient = [terms](const Vec3& x) {
    Vec3 g{0, 0, 0};
    for (const auto& t : *terms) {
      if (t.i > 0)
        g[0] += t.c * t.i * std::pow(x[0], t.i - 1) * std::pow(x[1], t.j) *
                std::pow(x[2], t.k);
      if (t.j > 0)
        g[1] += t.c * t.j * std::pow(x[0], t.i) * std::pow(x[1], t.j - 1) *
                std::pow(x[2], t.k);
      if (t.k > 0)
        g[2] += t.c * t.k * std::pow(x[0], t.i) * std::pow(x[1], t.j) *
                std::pow(x[2], t.k - 1);
    }
    return g;
  };
  return {value, gradient};
}

ManufacturedSolution ManufacturedSolution::trigonometric() {
  constexpr double kPi = std::numbers::pi;
  auto value = [](const Vec3& x) {
    return 2.0 + std::sin(kPi * x[0]) * std::cos(0.5 * kPi * x[1]) *
                     std::sin(0.5 * kPi * x[2] + 0.3);
  };
  auto gradient = [](const Vec3& x) {
    const double sy = std::cos(0.5 * kPi * x[1]);
    const double sz = std::sin(0.5 * kPi * x[2] + 0.3);
    return Vec3{kPi * std::cos(kPi * x[0]) * sy * sz,
                -0.5 * kPi * std::sin(kPi * x[0]) *
                    std::sin(0.5 * kPi * x[1]) * sz,
                0.5 * kPi * std::sin(kPi * x[0]) * sy *
                    std::cos(0.5 * kPi * x[2] + 0.3)};
  };
  return {value, gradient};
}

std::vector<Vec3> element_node_positions(const Discretization& disc, int e) {
  const fem::HexReferenceElement& ref = disc.ref();
  const fem::HexGeometry geom = disc.mesh().geometry(e);
  std::vector<Vec3> pos(static_cast<std::size_t>(ref.num_nodes()));
  for (int i = 0; i < ref.num_nodes(); ++i)
    pos[i] = geom.map(ref.node_coord(i));
  return pos;
}

void apply_manufactured(TransportSolver& solver,
                        const ManufacturedSolution& ms) {
  require(solver.input().nmom == 1,
          "apply_manufactured: manufactured solutions assume isotropic "
          "scattering (nmom == 1)");
  const Discretization& disc = solver.discretization();
  const angular::QuadratureSet& quad = disc.quadrature();
  ProblemData& problem = solver.problem();
  const int ne = disc.num_elements();
  const int ng = problem.xs.ng;
  const int n = disc.num_nodes();
  const int nf = disc.nodes_per_face();
  const int nang = disc.nang();

  problem.qext.fill(0.0);
  AngularFlux& qang = solver.angular_source();
  BoundaryAngularFlux& bc = solver.boundary_values();

  // Per-angle source at every node: q = Omega . grad + removal * value,
  // where removal folds the total minus all scattering into this group
  // (the exact solution is group-independent, so the incoming scattering
  // sum uses the same field).
  for (int e = 0; e < ne; ++e) {
    const std::vector<Vec3> pos = element_node_positions(disc, e);
    const int m = problem.material[e];
    std::vector<double> val(static_cast<std::size_t>(n));
    std::vector<Vec3> grad(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      val[i] = ms.value(pos[i]);
      grad[i] = ms.gradient(pos[i]);
    }
    for (int g = 0; g < ng; ++g) {
      double removal = problem.xs.sigt(m, g);
      for (int gp = 0; gp < ng; ++gp) removal -= problem.xs.slgg(m, gp, g);
      for (int oct = 0; oct < angular::kOctants; ++oct)
        for (int a = 0; a < nang; ++a) {
          const Vec3 omega = quad.direction(oct, a);
          double* q = qang.at(oct, a, e, g);
          for (int i = 0; i < n; ++i)
            q[i] = omega[0] * grad[i][0] + omega[1] * grad[i][1] +
                   omega[2] * grad[i][2] + removal * val[i];
        }
    }
  }

  // Dirichlet data on every boundary face node (only inflow ordinates are
  // ever read).
  const fem::HexReferenceElement& ref = disc.ref();
  for (const auto& [e, f] : disc.mesh().boundary_faces()) {
    const int bface = disc.mesh().boundary_face_id(e, f);
    const fem::HexGeometry geom = disc.mesh().geometry(e);
    const std::vector<int>& fnodes = ref.face_nodes(f);
    std::vector<double> vals(static_cast<std::size_t>(nf));
    for (int j = 0; j < nf; ++j)
      vals[j] = ms.value(geom.map(ref.node_coord(fnodes[j])));
    for (int oct = 0; oct < angular::kOctants; ++oct)
      for (int a = 0; a < nang; ++a)
        for (int g = 0; g < ng; ++g) {
          double* target = bc.at(bface, oct, a, g);
          for (int j = 0; j < nf; ++j) target[j] = vals[j];
        }
  }
}

double max_nodal_error(const TransportSolver& solver,
                       const ManufacturedSolution& ms) {
  const Discretization& disc = solver.discretization();
  const NodalField& phi = solver.scalar_flux();
  const int ng = solver.problem().xs.ng;
  double worst = 0.0;
  for (int e = 0; e < disc.num_elements(); ++e) {
    const std::vector<Vec3> pos = element_node_positions(disc, e);
    for (int g = 0; g < ng; ++g) {
      const double* ph = phi.at(e, g);
      for (int i = 0; i < disc.num_nodes(); ++i)
        worst = std::max(worst, std::fabs(ph[i] - ms.value(pos[i])));
    }
  }
  return worst;
}

double l2_error(const TransportSolver& solver, const ManufacturedSolution& ms,
                int g) {
  const Discretization& disc = solver.discretization();
  const fem::HexReferenceElement& ref = disc.ref();
  const NodalField& phi = solver.scalar_flux();
  double err2 = 0.0;
  std::vector<double> basis(static_cast<std::size_t>(ref.num_nodes()));
  for (int e = 0; e < disc.num_elements(); ++e) {
    const fem::HexGeometry geom = disc.mesh().geometry(e);
    const double* ph = phi.at(e, g);
    for (int q = 0; q < ref.num_qp(); ++q) {
      const auto xi = ref.qp_coord(q);
      const fem::Jacobian jac = geom.jacobian(xi);
      double uh = 0.0;
      for (int i = 0; i < ref.num_nodes(); ++i)
        uh += ph[i] * ref.basis_value(q, i);
      const double diff = uh - ms.value(geom.map(xi));
      err2 += ref.qp_weight(q) * jac.det * diff * diff;
    }
  }
  return std::sqrt(err2);
}

}  // namespace unsnap::core
