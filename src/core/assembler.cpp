#include "core/assembler.hpp"

#include "core/preassembly.hpp"

namespace unsnap::core {

LagSnapshot::LagSnapshot(const sweep::ScheduleSet& schedules, int ng,
                         int nf)
    : nang_(static_cast<std::size_t>(schedules.per_octant())),
      ng_(static_cast<std::size_t>(ng)),
      nf_(static_cast<std::size_t>(nf)) {
  base_.reserve(static_cast<std::size_t>(angular::kOctants) * nang_);
  std::size_t total = 0;
  for (int oct = 0; oct < angular::kOctants; ++oct)
    for (int a = 0; a < schedules.per_octant(); ++a) {
      base_.push_back(total);
      total += schedules.get(oct, a).lagged_faces().size() * ng_ * nf_;
    }
  data_.assign(total, 0.0);
}

void AssemblyContext::resize(int n, int nf) {
  a = linalg::Matrix(n, n);
  rhs.assign(static_cast<std::size_t>(n), 0.0);
  upwind.assign(static_cast<std::size_t>(nf), 0.0);
  qtmp.assign(static_cast<std::size_t>(n), 0.0);
  workspace.reserve(n);
}

void Assembler::assemble_matrix(double* a, int e, int g,
                                const Vec3& omega) const {
  const ElementIntegrals& ints = disc_->integrals();
  const int n = ints.num_nodes();
  const int nf = ints.nodes_per_face();
  const double wx = omega[0], wy = omega[1], wz = omega[2];
  const double st = problem_->sigt_eg(e, g);

  const double* m = ints.mass(e);
  const double* gx = ints.grad(e, 0);
  const double* gy = ints.grad(e, 1);
  const double* gz = ints.grad(e, 2);
  const int nn = n * n;
#pragma omp simd
  for (int idx = 0; idx < nn; ++idx)
    a[idx] = st * m[idx] - (wx * gx[idx] + wy * gy[idx] + wz * gz[idx]);

  // Outflow faces contribute Omega . F to the matrix; inflow faces go to
  // the right-hand side (the paper's data-dependent branch).
  for (int f = 0; f < fem::kFacesPerHex; ++f) {
    const Vec3 nrm = ints.face_normal(e, f);
    if (nrm[0] * wx + nrm[1] * wy + nrm[2] * wz < 0.0) continue;
    const double* fx = ints.face(e, f, 0);
    const double* fy = ints.face(e, f, 1);
    const double* fz = ints.face(e, f, 2);
    const int* fn = ints.face_nodes(f);
    for (int i = 0; i < nf; ++i) {
      double* arow = a + static_cast<std::size_t>(fn[i]) * n;
      const double* fxi = fx + static_cast<std::size_t>(i) * nf;
      const double* fyi = fy + static_cast<std::size_t>(i) * nf;
      const double* fzi = fz + static_cast<std::size_t>(i) * nf;
      for (int j = 0; j < nf; ++j)
        arow[fn[j]] += wx * fxi[j] + wy * fyi[j] + wz * fzi[j];
    }
  }
}

void Assembler::assemble_rhs(AssemblyContext& ctx, const SweepState& state,
                             int oct, int a, int e, int g,
                             const Vec3& omega) const {
  const ElementIntegrals& ints = disc_->integrals();
  const mesh::HexMesh& mesh = disc_->mesh();
  const int n = ints.num_nodes();
  const int nf = ints.nodes_per_face();
  const double wx = omega[0], wy = omega[1], wz = omega[2];

  // b = M * (q_in + q_ang + anisotropic moment expansion).
  const double* q = state.qin->at(e, g);
  if (state.qang != nullptr || state.qmom_hi != nullptr) {
    double* qt = ctx.qtmp.data();
#pragma omp simd
    for (int j = 0; j < n; ++j) qt[j] = q[j];
    if (state.qang != nullptr) {
      const double* qa = state.qang->at(oct, a, e, g);
#pragma omp simd
      for (int j = 0; j < n; ++j) qt[j] += qa[j];
    }
    if (state.qmom_hi != nullptr) {
      for (int m = 1; m < state.moment_count; ++m) {
        const double c = state.ylm_src[m];
        const double* qm = (*state.qmom_hi)[m - 1].at(e, g);
#pragma omp simd
        for (int j = 0; j < n; ++j) qt[j] += c * qm[j];
      }
    }
    q = qt;
  }
  const double* m = ints.mass(e);
  double* rhs = ctx.rhs.data();
  for (int i = 0; i < n; ++i) {
    const double* mrow = m + static_cast<std::size_t>(i) * n;
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = 0; j < n; ++j) acc += mrow[j] * q[j];
    rhs[i] = acc;
  }

  // Inflow faces: subtract Omega . F times the upwind trace. The upwind
  // values come from the neighbour's current flux (already updated this
  // sweep for faces the schedule respects, previous-iterate for lagged
  // cycle-broken faces) or from prescribed boundary data; vacuum
  // boundaries contribute nothing.
  for (int f = 0; f < fem::kFacesPerHex; ++f) {
    const Vec3 nrm = ints.face_normal(e, f);
    if (nrm[0] * wx + nrm[1] * wy + nrm[2] * wz >= 0.0) continue;

    const double* vals = nullptr;
    const int nbr = mesh.neighbor(e, f);
    if (nbr != mesh::kNoNeighbor) {
      // Grazing faces incoming on both sides are outside the dependency
      // graph (~zero flow): read vacuum rather than racing on a
      // neighbour that may share this bucket.
      if (state.schedule != nullptr && state.schedule->face_is_phantom(e, f))
        continue;
      if (state.lag != nullptr && state.schedule != nullptr &&
          state.schedule->face_is_lagged(e, f)) {
        // Lagged (cycle-broken) faces read the pre-gathered
        // previous-iterate trace captured at sweep start.
        vals = state.lag->row(oct, a, state.schedule->lag_slot(e, f), g);
      } else {
        // Every other interior face reads the neighbour's flux as updated
        // this sweep.
        const double* pn = state.psi->at(oct, a, nbr, g);
        const int* perm = ints.neighbor_perm(e, f);
        double* uv = ctx.upwind.data();
        for (int j = 0; j < nf; ++j) uv[j] = pn[perm[j]];
        vals = uv;
      }
    } else if (state.bc != nullptr && state.bc->active()) {
      vals = state.bc->at(mesh.boundary_face_id(e, f), oct, a, g);
    } else {
      continue;  // vacuum
    }

    const double* fx = ints.face(e, f, 0);
    const double* fy = ints.face(e, f, 1);
    const double* fz = ints.face(e, f, 2);
    const int* fn = ints.face_nodes(f);
    for (int i = 0; i < nf; ++i) {
      const double* fxi = fx + static_cast<std::size_t>(i) * nf;
      const double* fyi = fy + static_cast<std::size_t>(i) * nf;
      const double* fzi = fz + static_cast<std::size_t>(i) * nf;
      double acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (int j = 0; j < nf; ++j)
        acc += (wx * fxi[j] + wy * fyi[j] + wz * fzi[j]) * vals[j];
      rhs[fn[i]] -= acc;
    }
  }
}

void Assembler::process(AssemblyContext& ctx, const SweepState& state,
                        int oct, int a, int e, int g, const Vec3& omega,
                        double weight, linalg::SolverKind solver,
                        bool atomic_phi, bool time_solve) const {
  const int n = disc_->num_nodes();
  assemble_rhs(ctx, state, oct, a, e, g, omega);

  const double* psi;
  if (state.pre != nullptr) {
    psi = state.pre->apply(ctx, oct, a, e, g);
  } else {
    double* rhs = ctx.rhs.data();
    assemble_matrix(ctx.a.data(), e, g, omega);
    if (time_solve) ctx.solve_watch.start();
    linalg::solve_in_place(solver, ctx.a.view(), {rhs, ctx.rhs.size()},
                           ctx.workspace);
    if (time_solve) ctx.solve_seconds += ctx.solve_watch.peek();
    psi = rhs;
  }

  double* out = state.psi->at(oct, a, e, g);
#pragma omp simd
  for (int i = 0; i < n; ++i) out[i] = psi[i];

  double* ph = state.phi->at(e, g);
  if (atomic_phi) {
    for (int i = 0; i < n; ++i) {
#pragma omp atomic
      ph[i] += weight * psi[i];
    }
    if (state.phi_hi != nullptr) {
      for (int m = 1; m < state.moment_count; ++m) {
        const double c = weight * state.ylm_acc[m];
        double* pm = (*state.phi_hi)[m - 1].at(e, g);
        for (int i = 0; i < n; ++i) {
#pragma omp atomic
          pm[i] += c * psi[i];
        }
      }
    }
  } else {
#pragma omp simd
    for (int i = 0; i < n; ++i) ph[i] += weight * psi[i];
    if (state.phi_hi != nullptr) {
      for (int m = 1; m < state.moment_count; ++m) {
        const double c = weight * state.ylm_acc[m];
        double* pm = (*state.phi_hi)[m - 1].at(e, g);
#pragma omp simd
        for (int i = 0; i < n; ++i) pm[i] += c * psi[i];
      }
    }
  }
}

}  // namespace unsnap::core
