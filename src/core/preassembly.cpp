#include "core/preassembly.hpp"

#include "angular/quadrature.hpp"
#include "linalg/invert.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace unsnap::core {

PreassembledOperator::PreassembledOperator(const Assembler& assembler,
                                           Mode mode)
    : mode_(mode) {
  const Discretization& disc = assembler.discretization();
  nang_ = disc.nang();
  ne_ = disc.num_elements();
  ng_ = assembler.problem().xs.ng;
  n_ = disc.num_nodes();

  const auto systems = static_cast<std::size_t>(angular::kOctants) * nang_ *
                       ne_ * ng_;
  const auto nn = static_cast<std::size_t>(n_) * n_;
  mats_.resize({systems, nn});
  if (mode_ == Mode::FactoredLu)
    pivots_.resize({systems, static_cast<std::size_t>(n_)});

#pragma omp parallel
  {
    linalg::Matrix scratch(n_, n_);
    std::vector<int> piv(static_cast<std::size_t>(n_));
#pragma omp for collapse(2) schedule(dynamic, 8)
    for (int oct = 0; oct < angular::kOctants; ++oct) {
      for (int a = 0; a < nang_; ++a) {
        const Vec3 omega = disc.quadrature().direction(oct, a);
        for (int e = 0; e < ne_; ++e) {
          for (int g = 0; g < ng_; ++g) {
            const std::size_t idx = index(oct, a, e, g);
            double* stored = &mats_(idx, 0);
            if (mode_ == Mode::FactoredLu) {
              assembler.assemble_matrix(stored, e, g, omega);
              linalg::lu_factor(linalg::MatrixView(stored, n_, n_),
                                {&pivots_(idx, 0),
                                 static_cast<std::size_t>(n_)});
            } else {
              assembler.assemble_matrix(scratch.data(), e, g, omega);
              linalg::invert(scratch.view(),
                             linalg::MatrixView(stored, n_, n_), piv);
            }
          }
        }
      }
    }
  }
}

const double* PreassembledOperator::apply(AssemblyContext& ctx, int oct,
                                          int a, int e, int g) const {
  const std::size_t idx = index(oct, a, e, g);
  const double* stored = &mats_(idx, 0);
  double* rhs = ctx.rhs.data();
  if (mode_ == Mode::FactoredLu) {
    linalg::lu_solve_factored(
        linalg::ConstMatrixView(stored, n_, n_),
        {&pivots_(idx, 0), static_cast<std::size_t>(n_)},
        {rhs, static_cast<std::size_t>(n_)});
    return rhs;
  }
  // ExplicitInverse: psi = A^{-1} b, one dense matvec over the contiguous
  // stored inverse into the staging scratch (left there — the caller reads
  // the result row directly instead of paying a copy back into rhs).
  double* out = ctx.qtmp.data();
  const int n = n_;
  for (int i = 0; i < n; ++i) {
    const double* row = stored + static_cast<std::size_t>(i) * n;
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = 0; j < n; ++j) acc += row[j] * rhs[j];
    out[i] = acc;
  }
  return out;
}

std::size_t PreassembledOperator::bytes() const {
  return sizeof(double) * mats_.size() + sizeof(int) * pivots_.size();
}

}  // namespace unsnap::core
