#include "core/element_integrals.hpp"

#include "mesh/mesh_checks.hpp"

namespace unsnap::core {

ElementIntegrals::ElementIntegrals(const mesh::HexMesh& mesh,
                                   const fem::HexReferenceElement& ref)
    : ne_(mesh.num_elements()),
      n_(ref.num_nodes()),
      nf_(ref.nodes_per_face()) {
  const auto ne = static_cast<std::size_t>(ne_);
  const auto nn = static_cast<std::size_t>(n_) * n_;
  const auto nfnf = static_cast<std::size_t>(nf_) * nf_;
  constexpr auto kF = static_cast<std::size_t>(fem::kFacesPerHex);

  mass_.resize({ne, nn});
  grad_.resize({3, ne, nn});
  face_.resize({ne, kF, 3, nfnf});
  fnormal_.resize({ne, kF, 3});
  perm_.resize({ne, kF, static_cast<std::size_t>(nf_)}, -1);
  node_weight_.resize({ne, static_cast<std::size_t>(n_)});
  face_colsum_.resize({ne, kF, 3, static_cast<std::size_t>(nf_)});
  volume_.resize(ne);
  for (int f = 0; f < fem::kFacesPerHex; ++f) face_nodes_[f] = ref.face_nodes(f);

#pragma omp parallel for schedule(dynamic, 8)
  for (int e = 0; e < ne_; ++e) {
    const fem::LocalMatrices local =
        fem::compute_local_matrices(ref, mesh.geometry(e));
    volume_[e] = local.volume;
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j) {
        mass_(e, i * n_ + j) = local.mass(i, j);
        for (int d = 0; d < 3; ++d)
          grad_(d, e, i * n_ + j) = local.grad[d](i, j);
      }
    // Nodal weights: w_j = sum_i M_ij (partition of unity in the test slot).
    for (int j = 0; j < n_; ++j) {
      double w = 0.0;
      for (int i = 0; i < n_; ++i) w += local.mass(i, j);
      node_weight_(e, j) = w;
    }
    for (int f = 0; f < fem::kFacesPerHex; ++f) {
      for (int d = 0; d < 3; ++d) {
        for (int i = 0; i < nf_; ++i)
          for (int j = 0; j < nf_; ++j)
            face_(e, f, d, i * nf_ + j) = local.face[f][d](i, j);
        for (int j = 0; j < nf_; ++j) {
          double s = 0.0;
          for (int i = 0; i < nf_; ++i) s += local.face[f][d](i, j);
          face_colsum_(e, f, d, j) = s;
        }
        fnormal_(e, f, d) = local.face_area_normal[f][d];
      }
      if (mesh.neighbor(e, f) != mesh::kNoNeighbor) {
        const std::vector<int> p = mesh::match_face_nodes(mesh, ref, e, f);
        for (int j = 0; j < nf_; ++j) perm_(e, f, j) = p[j];
      }
    }
  }
}

std::size_t ElementIntegrals::bytes() const {
  return sizeof(double) * (mass_.size() + grad_.size() + face_.size() +
                           fnormal_.size() + node_weight_.size() +
                           face_colsum_.size() + volume_.size()) +
         sizeof(int) * perm_.size();
}

}  // namespace unsnap::core
