#pragma once

#include <functional>
#include <span>
#include <vector>

namespace unsnap::accel {

/// Matrix-free iterative solvers over flat double vectors: restarted GMRES
/// and plain Richardson iteration (the degenerate Krylov method that
/// source iteration is). The operator is a black box — for the transport
/// binding in accel/inner.* one application is exactly one sweep — so
/// every operator the mini-app can express (any CycleStrategy,
/// ConcurrencyScheme, layout, solver kind) is accelerated for free.
///
/// All inner products go through the serial linalg::blas_like kernels,
/// keeping the iterates bit-reproducible across OpenMP thread counts.

/// y = A x. x and y never alias; both have the solver's vector length.
using LinearOperator =
    std::function<void(std::span<const double> x, std::span<double> y)>;

struct KrylovOptions {
  // The GMRES restart length is a property of the Gmres workspace (it
  // sizes the stored basis), not an option here.
  int max_iters = 100;  // total Krylov iterations across cycles
  /// Cap on operator applications (the transport binding's sweep budget).
  /// GMRES spends one extra apply per cycle on the true residual.
  int max_applies = 1 << 30;
  double abs_tol = 0.0;  // stop when ||r||_2 <= abs_tol ...
  double rel_tol = 0.0;  // ... or ||r||_2 <= rel_tol * ||b||_2
  /// Optional extra convergence test on the *true* residual, evaluated at
  /// cycle starts (where r = b - A x is formed anyway). The transport
  /// binding uses it for SNAP's pointwise max-relative-change criterion,
  /// which the 2-norm tests cannot express.
  std::function<bool(std::span<const double> x, std::span<const double> r)>
      converged_test;
  /// Replacement inner product / norm (default: the serial linalg
  /// kernels). A distributed caller supplies globally-reduced versions so
  /// each rank can run the same recurrence over its slice of a partitioned
  /// vector: every rank then sees identical scalars and the per-rank
  /// iterates stay in lockstep (see comm::DistributedSweepSolver).
  std::function<double(std::span<const double>, std::span<const double>)>
      dot;
  std::function<double(std::span<const double>)> norm2;
};

struct KrylovResult {
  bool converged = false;
  int iterations = 0;  // Krylov iterations (Arnoldi steps / Richardson steps)
  int applies = 0;     // operator applications
  /// ||r||_2 per iteration: entry 0 is the initial residual, then one entry
  /// per Krylov iteration (GMRES entries between cycle starts are the
  /// Givens least-squares estimate, exact in exact arithmetic).
  std::vector<double> residual_history;
  [[nodiscard]] double final_residual() const {
    return residual_history.empty() ? 0.0 : residual_history.back();
  }
};

/// Restarted GMRES with modified Gram-Schmidt and Givens least squares.
/// A class so the (restart+1) x n basis workspace survives across solves
/// (the transport driver solves once per outer) and so the tests can
/// inspect the Arnoldi basis orthonormality after a solve.
class Gmres {
 public:
  Gmres(std::size_t n, int restart);

  /// Solve A x = b starting from the incoming x (not assumed zero).
  KrylovResult solve(const LinearOperator& op, std::span<const double> b,
                     std::span<double> x, const KrylovOptions& options);

  /// Arnoldi basis of the most recent cycle: basis_size() orthonormal
  /// vectors of length n. Exposed for the orthonormality tests.
  [[nodiscard]] int basis_size() const { return last_cycle_size_; }
  [[nodiscard]] std::span<const double> basis_vector(int j) const;

 private:
  std::size_t n_;
  int restart_;
  int last_cycle_size_ = 0;
  std::vector<double> basis_;            // (restart+1) x n, row-major
  std::vector<double> h_;                // (restart+1) x restart Hessenberg
  std::vector<double> cs_, sn_, g_, y_;  // Givens rotations + projected rhs
  std::vector<double> r_, w_;            // residual / candidate vectors

  [[nodiscard]] double* vec(int j) { return basis_.data() + n_ * j; }
  [[nodiscard]] double& h(int i, int j) { return h_[h_cols() * i + j]; }
  [[nodiscard]] std::size_t h_cols() const {
    return static_cast<std::size_t>(restart_);
  }
};

/// Richardson iteration x += (b - A x): exactly the source-iteration
/// recurrence when A is the swept transport operator. Shares the options
/// and result vocabulary with Gmres so the two schemes are comparable
/// sweep for sweep.
KrylovResult richardson(const LinearOperator& op, std::span<const double> b,
                        std::span<double> x, const KrylovOptions& options);

}  // namespace unsnap::accel
