#include "accel/inner.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas_like.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace unsnap::accel {

std::size_t flux_vector_size(const core::TransportSolver& solver) {
  std::size_t n = solver.scalar_flux().size();
  for (const core::NodalField& mom : solver.flux_moments()) n += mom.size();
  return n;
}

void gather_flux(const core::TransportSolver& solver, std::span<double> out) {
  UNSNAP_ASSERT(out.size() == flux_vector_size(solver));
  double* dst = out.data();
  const core::NodalField& phi = solver.scalar_flux();
  dst = std::copy(phi.data(), phi.data() + phi.size(), dst);
  for (const core::NodalField& mom : solver.flux_moments())
    dst = std::copy(mom.data(), mom.data() + mom.size(), dst);
}

void scatter_flux(core::TransportSolver& solver, std::span<const double> in) {
  UNSNAP_ASSERT(in.size() == flux_vector_size(solver));
  const double* src = in.data();
  core::NodalField& phi = solver.scalar_flux();
  std::copy(src, src + phi.size(), phi.data());
  src += phi.size();
  for (core::NodalField& mom : solver.flux_moments()) {
    std::copy(src, src + mom.size(), mom.data());
    src += mom.size();
  }
}

double max_pointwise_change(std::span<const double> delta,
                            std::span<const double> base, double floor) {
  UNSNAP_ASSERT(delta.size() == base.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double diff = std::fabs(delta[i]);
    const double scale = std::fabs(base[i]);
    worst = std::max(worst, scale > floor ? diff / scale : diff);
  }
  return worst;
}

core::IterationResult run_gmres(core::TransportSolver& solver,
                                const DistributedHooks* hooks) {
  const snap::Input& input = solver.input();
  core::IterationResult result;
  Stopwatch total;
  total.start();

  // Serial defaults for the distributable seams (see DistributedHooks).
  const auto sweep_frozen = [&] {
    if (hooks != nullptr && hooks->sweep_frozen) hooks->sweep_frozen();
    else solver.sweep_frozen_coupling();
  };
  const auto refresh = [&] {
    if (hooks != nullptr && hooks->refresh) hooks->refresh();
    else solver.refresh_lagged_couplings();
  };
  const auto rmax = [&](double v) {
    return hooks != nullptr && hooks->reduce_max ? hooks->reduce_max(v) : v;
  };
  const auto nrm = [&](std::span<const double> v) {
    return hooks != nullptr && hooks->norm2 ? hooks->norm2(v)
                                            : linalg::norm2(v);
  };

  const std::size_t n = flux_vector_size(solver);
  // SNAP's convergence measures watch the scalar flux only (the l > 0
  // moments ride along in the Krylov vector because the operator needs
  // them, but SI's inner/outer tests never look at them) — slice the
  // change measurements to the phi prefix so both schemes apply the same
  // criterion.
  const std::size_t nphi = solver.scalar_flux().size();
  Gmres workspace(n, input.gmres_restart);
  std::vector<double> x(n), b(n), fx(n), phi_outer(n), diff(n);

  // iitm is the sweep budget per outer, shared with SI sweep for sweep;
  // seed and closing sweeps bracket the Krylov applies.
  const int krylov_applies =
      std::max(input.iitm - 2, 2);

  core::IterationObserver* const observer = solver.observer();

  for (int outer = 0; outer < input.oitm; ++outer) {
    if (observer != nullptr) observer->on_outer_begin(outer);
    solver.update_outer_source();
    gather_flux(solver, phi_outer);
    x = phi_outer;  // warm start from the current iterate
    int sweeps = 0;

    // Seed the affine part: b = F(0) is the swept response to the outer
    // source, boundary inflow and frozen lagged couplings alone.
    std::fill(b.begin(), b.end(), 0.0);
    scatter_flux(solver, b);
    solver.update_inner_source();
    sweep_frozen();
    ++sweeps;
    gather_flux(solver, b);

    KrylovOptions options;
    options.max_iters = input.gmres_max_iters;
    options.max_applies = krylov_applies;
    if (!input.fixed_iterations) options.rel_tol = 0.1 * input.epsi;
    if (hooks != nullptr) {
      options.dot = hooks->dot;
      options.norm2 = hooks->norm2;
    }
    // The true residual r = F(x) - x is exactly the next source-iteration
    // step, so SNAP's pointwise inner test applies verbatim. Record it per
    // restart cycle; under fixed iterations record but never stop early.
    options.converged_test = [&](std::span<const double> xk,
                                 std::span<const double> r) {
      const double change =
          rmax(max_pointwise_change(r.first(nphi), xk.first(nphi)));
      result.inner_history.push_back(change);
      if (observer != nullptr)
        observer->on_inner(
            static_cast<int>(result.inner_history.size()) - 1,
            result.sweeps + sweeps, change);
      return !input.fixed_iterations && change < input.epsi;
    };

    const LinearOperator op = [&](std::span<const double> v,
                                  std::span<double> y) {
      OBS_SPAN("gmres.apply", "outer", outer);
      scatter_flux(solver, v);
      solver.update_inner_source();
      sweep_frozen();
      ++sweeps;
      gather_flux(solver, y);  // y = F(v)
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = v[i] - y[i] + b[i];
    };

    const KrylovResult inner = workspace.solve(op, b, x, options);
    result.krylov_iters += inner.iterations;
    const double bnorm = nrm(b);
    for (const double r : inner.residual_history) {
      result.residual_history.push_back(bnorm > 0.0 ? r / bnorm : r);
      if (observer != nullptr)
        observer->on_krylov(
            static_cast<int>(result.residual_history.size()) - 1,
            result.residual_history.back());
    }

    // Closing physical sweep: psi consistent with the Krylov solution, the
    // lagged couplings re-anchored on it — the gmres twin of sweep()'s
    // per-iteration bookkeeping.
    scatter_flux(solver, x);
    solver.update_inner_source();
    sweep_frozen();
    ++sweeps;
    refresh();
    gather_flux(solver, fx);

    for (std::size_t i = 0; i < nphi; ++i) diff[i] = fx[i] - x[i];
    result.final_inner_change = rmax(max_pointwise_change(
        std::span<const double>(diff).first(nphi),
        std::span<const double>(x).first(nphi)));
    result.inner_history.push_back(result.final_inner_change);
    result.inners += sweeps;
    result.sweeps += sweeps;
    ++result.outers;
    if (observer != nullptr)
      observer->on_inner(static_cast<int>(result.inner_history.size()) - 1,
                         result.sweeps, result.final_inner_change);

    for (std::size_t i = 0; i < nphi; ++i) diff[i] = fx[i] - phi_outer[i];
    result.final_outer_change = rmax(max_pointwise_change(
        std::span<const double>(diff).first(nphi),
        std::span<const double>(phi_outer).first(nphi)));
    // Same tests as the SI loop: SNAP's outer test is 100x looser.
    result.converged = result.final_outer_change < 100.0 * input.epsi &&
                       result.final_inner_change < input.epsi;
    if (observer != nullptr)
      observer->on_outer_end(outer, result.final_outer_change,
                             result.converged);
    if (result.converged && !input.fixed_iterations) break;
  }

  result.total_seconds = total.stop();
  result.assemble_solve_seconds = solver.assemble_solve_seconds();
  result.solve_seconds = solver.solve_seconds();
  return result;
}

}  // namespace unsnap::accel
