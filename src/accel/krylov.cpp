#include "accel/krylov.hpp"

#include <cmath>

#include "linalg/blas_like.hpp"
#include "util/assert.hpp"

namespace unsnap::accel {

namespace {

/// Shared cycle-start convergence logic. When a converged_test is given it
/// is the sole authority: the 2-norm target then only paces the cycles,
/// and is tightened whenever it has been met but the authority still says
/// no (otherwise the solve would declare victory on the 2-norm while the
/// pointwise test keeps failing on relatively-large residuals at tiny
/// flux entries). An exactly zero residual is always converged.
bool residual_converged(const KrylovOptions& options,
                        std::span<const double> x, std::span<const double> r,
                        double beta, double& target) {
  if (beta == 0.0) return true;
  if (options.converged_test) {
    if (options.converged_test(x, r)) return true;
    // Demand one order beyond the current residual before the next
    // cycle-boundary check — the pointwise authority usually trails the
    // 2-norm by a few digits on fluxes spanning many magnitudes.
    if (target > 0.0 && beta <= target) target = 0.1 * beta;
    return false;
  }
  return beta <= target;
}

}  // namespace

Gmres::Gmres(std::size_t n, int restart) : n_(n), restart_(restart) {
  require(restart >= 1, "gmres: restart length must be >= 1");
  basis_.assign(n_ * static_cast<std::size_t>(restart_ + 1), 0.0);
  h_.assign(static_cast<std::size_t>(restart_ + 1) * h_cols(), 0.0);
  cs_.assign(h_cols(), 0.0);
  sn_.assign(h_cols(), 0.0);
  g_.assign(static_cast<std::size_t>(restart_ + 1), 0.0);
  y_.assign(h_cols(), 0.0);
  r_.assign(n_, 0.0);
  w_.assign(n_, 0.0);
}

std::span<const double> Gmres::basis_vector(int j) const {
  UNSNAP_ASSERT(j >= 0 && j < last_cycle_size_);
  return {basis_.data() + n_ * static_cast<std::size_t>(j), n_};
}

KrylovResult Gmres::solve(const LinearOperator& op, std::span<const double> b,
                          std::span<double> x,
                          const KrylovOptions& options) {
  require(b.size() == n_ && x.size() == n_,
          "gmres: vector length does not match the workspace");
  const auto nrm = [&](std::span<const double> v) {
    return options.norm2 ? options.norm2(v) : linalg::norm2(v);
  };
  const auto dotf = [&](std::span<const double> a,
                        std::span<const double> v) {
    return options.dot ? options.dot(a, v) : linalg::dot(a, v);
  };
  KrylovResult result;
  double target = std::max(options.abs_tol, options.rel_tol * nrm(b));
  last_cycle_size_ = 0;

  while (true) {
    // True residual r = b - A x (one apply; also GMRES's restart vector).
    if (result.applies >= options.max_applies) break;
    op(x, w_);
    ++result.applies;
    for (std::size_t i = 0; i < n_; ++i) r_[i] = b[i] - w_[i];
    const double beta = nrm(r_);
    result.residual_history.push_back(beta);
    if (residual_converged(options, x, r_, beta, target)) {
      result.converged = true;
      break;
    }
    if (result.iterations >= options.max_iters) break;

    // Arnoldi cycle seeded with the normalised residual.
    double* v0 = vec(0);
    for (std::size_t i = 0; i < n_; ++i) v0[i] = r_[i] / beta;
    g_[0] = beta;
    for (int i = 1; i <= restart_; ++i) g_[static_cast<std::size_t>(i)] = 0.0;
    int cols = 0;
    int formed = 1;
    bool happy = false;
    for (int j = 0; j < restart_; ++j) {
      if (result.iterations >= options.max_iters ||
          result.applies >= options.max_applies)
        break;
      op({vec(j), n_}, w_);
      ++result.applies;
      ++result.iterations;
      const double wnorm = nrm(w_);
      for (int i = 0; i <= j; ++i) {
        h(i, j) = dotf(w_, {vec(i), n_});
        linalg::axpy(-h(i, j), {vec(i), n_}, w_);
      }
      const double hsub = nrm(w_);
      h(j + 1, j) = hsub;
      happy = hsub <= 1e-14 * wnorm;  // Krylov space is invariant: exact solve
      if (!happy) {
        double* vnext = vec(j + 1);
        for (std::size_t i = 0; i < n_; ++i) vnext[i] = w_[i] / hsub;
        ++formed;
      }
      // Reduce column j to upper triangular with the accumulated Givens
      // rotations, then a new rotation zeroing the subdiagonal.
      for (int i = 0; i < j; ++i) {
        const double t = cs_[i] * h(i, j) + sn_[i] * h(i + 1, j);
        h(i + 1, j) = -sn_[i] * h(i, j) + cs_[i] * h(i + 1, j);
        h(i, j) = t;
      }
      const double a = h(j, j), sub = h(j + 1, j);
      const double rr = std::hypot(a, sub);
      cs_[j] = rr == 0.0 ? 1.0 : a / rr;
      sn_[j] = rr == 0.0 ? 0.0 : sub / rr;
      h(j, j) = rr;
      h(j + 1, j) = 0.0;
      g_[j + 1] = -sn_[j] * g_[j];
      g_[j] *= cs_[j];
      ++cols;
      // |g_{j+1}| is the least-squares residual norm of the cycle iterate.
      const double est = std::fabs(g_[j + 1]);
      result.residual_history.push_back(est);
      if (happy || (target > 0.0 && est <= target)) break;
    }
    if (cols == 0) break;  // budget exhausted before any Arnoldi step
    last_cycle_size_ = formed;

    // Back-substitute R y = g and fold the correction into x.
    for (int i = cols - 1; i >= 0; --i) {
      double s = g_[i];
      for (int k = i + 1; k < cols; ++k) s -= h(i, k) * y_[k];
      y_[i] = h(i, i) == 0.0 ? 0.0 : s / h(i, i);
    }
    for (int j = 0; j < cols; ++j) linalg::axpy(y_[j], {vec(j), n_}, x);
  }
  return result;
}

KrylovResult richardson(const LinearOperator& op, std::span<const double> b,
                        std::span<double> x, const KrylovOptions& options) {
  require(b.size() == x.size(),
          "richardson: b and x lengths do not match");
  const auto nrm = [&](std::span<const double> v) {
    return options.norm2 ? options.norm2(v) : linalg::norm2(v);
  };
  KrylovResult result;
  const std::size_t n = b.size();
  std::vector<double> w(n), r(n);
  double target = std::max(options.abs_tol, options.rel_tol * nrm(b));
  while (result.applies < options.max_applies) {
    op(x, w);
    ++result.applies;
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - w[i];
    const double beta = nrm(r);
    result.residual_history.push_back(beta);
    if (residual_converged(options, x, r, beta, target)) {
      result.converged = true;
      break;
    }
    if (result.iterations >= options.max_iters) break;
    linalg::axpy(1.0, r, x);
    ++result.iterations;
  }
  return result;
}

}  // namespace unsnap::accel
