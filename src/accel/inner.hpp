#pragma once

#include "accel/krylov.hpp"
#include "core/transport_solver.hpp"

namespace unsnap::accel {

/// Sweep-preconditioned Krylov inner solves for the transport solver.
///
/// One source iteration computes phi_new = F(phi) = D L^-1 M (qout + S phi)
/// through update_inner_source() + sweep(); F is affine in phi once the
/// iteration-lagged couplings (reflective mirror, cycle-lag snapshot) are
/// frozen. The within-group equation is therefore the linear system
///   (I - A) phi = b,   A phi = F(phi) - F(0),   b = F(0),
/// and applying (I - A) is exactly one sweep — GMRES over this operator is
/// the classical sweep-preconditioned Krylov transport solve (Haut et al.),
/// whose convergence does not stall as the scattering ratio c -> 1 the way
/// plain source iteration (Richardson on the same operator) does.
///
/// The vectors are the solver's flux moments flattened end to end: the
/// scalar flux first, then each l > 0 moment field (nmom > 1).

[[nodiscard]] std::size_t flux_vector_size(
    const core::TransportSolver& solver);
void gather_flux(const core::TransportSolver& solver, std::span<double> out);
void scatter_flux(core::TransportSolver& solver, std::span<const double> in);

/// SNAP's pointwise convergence measure on flat vectors: max over i of
/// |delta_i| / |base_i|, falling back to |delta_i| where |base_i| <= floor
/// (the flat-vector twin of core::max_relative_change).
[[nodiscard]] double max_pointwise_change(std::span<const double> delta,
                                          std::span<const double> base,
                                          double floor = 1e-12);

/// The full outer/inner loop with GMRES inners: same outer source update,
/// iteration budget and convergence vocabulary as TransportSolver::run()'s
/// source-iteration loop, with each within-group solve delegated to
/// restarted GMRES over the swept operator. Every inner solve spends one
/// sweep seeding b = F(0), at most iitm - 2 sweeps inside the Krylov
/// loop (never fewer than 2, so tiny iitm still makes progress) and one
/// closing physical sweep that restores a consistent psi and re-anchors
/// the lagged couplings.
[[nodiscard]] core::IterationResult run_gmres(core::TransportSolver& solver);

}  // namespace unsnap::accel
