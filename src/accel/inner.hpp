#pragma once

#include "accel/krylov.hpp"
#include "core/transport_solver.hpp"

namespace unsnap::accel {

/// Sweep-preconditioned Krylov inner solves for the transport solver.
///
/// One source iteration computes phi_new = F(phi) = D L^-1 M (qout + S phi)
/// through update_inner_source() + sweep(); F is affine in phi once the
/// iteration-lagged couplings (reflective mirror, cycle-lag snapshot) are
/// frozen. The within-group equation is therefore the linear system
///   (I - A) phi = b,   A phi = F(phi) - F(0),   b = F(0),
/// and applying (I - A) is exactly one sweep — GMRES over this operator is
/// the classical sweep-preconditioned Krylov transport solve (Haut et al.),
/// whose convergence does not stall as the scattering ratio c -> 1 the way
/// plain source iteration (Richardson on the same operator) does.
///
/// The vectors are the solver's flux moments flattened end to end: the
/// scalar flux first, then each l > 0 moment field (nmom > 1).

[[nodiscard]] std::size_t flux_vector_size(
    const core::TransportSolver& solver);
void gather_flux(const core::TransportSolver& solver, std::span<double> out);
void scatter_flux(core::TransportSolver& solver, std::span<const double> in);

/// SNAP's pointwise convergence measure on flat vectors: max over i of
/// |delta_i| / |base_i|, falling back to |delta_i| where |base_i| <= floor
/// (the flat-vector twin of core::max_relative_change).
[[nodiscard]] double max_pointwise_change(std::span<const double> delta,
                                          std::span<const double> base,
                                          double floor = 1e-12);

/// Hooks that let a distributed driver run this very inner loop over one
/// rank's slice of a partitioned flux vector (comm::DistributedSweepSolver
/// with the pipelined exchange): the frozen sweep becomes the rank's
/// pipelined-exchange sweep (an exact slice of the global operator apply),
/// dot/norm2 become globally-reduced inner products, reduce_max wraps the
/// pointwise convergence measures, and refresh also re-anchors cross-rank
/// lagged couplings. Every reduction returns the identical value on every
/// rank, so the per-rank Krylov recurrences stay in lockstep and the
/// distributed solve IS the single-domain solve. Unset members fall back
/// to the serial behaviour.
struct DistributedHooks {
  std::function<void()> sweep_frozen;  // default: sweep_frozen_coupling()
  std::function<void()> refresh;       // default: refresh_lagged_couplings()
  std::function<double(std::span<const double>, std::span<const double>)>
      dot;
  std::function<double(std::span<const double>)> norm2;
  std::function<double(double)> reduce_max;  // global max of a local max
};

/// The full outer/inner loop with GMRES inners: same outer source update,
/// iteration budget and convergence vocabulary as TransportSolver::run()'s
/// source-iteration loop, with each within-group solve delegated to
/// restarted GMRES over the swept operator. Every inner solve spends one
/// sweep seeding b = F(0), at most iitm - 2 sweeps inside the Krylov
/// loop (never fewer than 2, so tiny iitm still makes progress) and one
/// closing physical sweep that restores a consistent psi and re-anchors
/// the lagged couplings. `hooks` (optional) distributes the loop — see
/// DistributedHooks.
[[nodiscard]] core::IterationResult run_gmres(
    core::TransportSolver& solver, const DistributedHooks* hooks = nullptr);

}  // namespace unsnap::accel
