#pragma once

#include <memory>
#include <vector>

#include "core/balance.hpp"
#include "core/transport_solver.hpp"
#include "xs/library.hpp"

namespace unsnap::xs {

/// Controls of the k-eigenvalue power iteration (`[xs]` deck section).
struct KeffOptions {
  /// Downscatter-ordered groupset partition; empty = default_groupsets of
  /// the problem's cross sections (maximal splitting the scattering
  /// structure permits).
  std::vector<GroupRange> groupsets;
  double k_tol = 1e-6;        // |k_new - k| stopping criterion
  double fission_tol = 1e-5;  // max relative fission-source change
  int max_outers = 100;
  /// Shifted (Lyusternik) fission-source extrapolation: every fifth outer
  /// the source step is amplified by sigma/(1 - sigma) with sigma the
  /// current dominance-ratio estimate, collapsing the slowly-decaying
  /// first harmonic. Off by default (plain power iteration).
  bool extrapolate = false;
};

/// Outcome of one power iteration.
struct KeffResult {
  double k = 1.0;
  bool converged = false;
  int outers = 0;
  double dominance_ratio = 0.0;       // last sigma estimate
  double final_k_change = 0.0;
  double final_fission_change = 0.0;
  std::vector<double> k_history;      // k after each outer
  int inners = 0;                     // summed over groupset solves
  int sweeps = 0;
  int krylov_iters = 0;               // gmres scheme only
  std::vector<long long> groupset_sweeps;  // [set] cumulative sweeps
  double total_seconds = 0.0;
};

/// k-eigenvalue driver: power iteration over the fission source around
/// block Gauss-Seidel groupset solves. Each groupset owns a full
/// core::TransportSolver over the shared discretisation, seeing only its
/// in-set scattering block; fission (chi_g / k) and cross-set scattering
/// enter through the solver's additive coupling source, so both iteration
/// schemes, preassembly and every concurrency scheme work per groupset
/// exactly as they do for fixed-source runs. Sets are solved in
/// downscatter order with the freshest global flux (Gauss-Seidel), which
/// makes a pure-downscatter library converge its scattering source in one
/// pass per outer.
///
/// All cross-thread reductions (fission production, source norms) are
/// serial element-ordered loops, so k histories are bitwise-identical
/// across thread counts and concurrency schemes.
class KeffSolver {
 public:
  /// `input` is the global flat input (its ng spans the whole library);
  /// `problem` carries the fission-extended cross sections (xs.has_fission
  /// must hold). The external source in `problem` is ignored: keff is a
  /// pure eigenvalue problem.
  KeffSolver(std::shared_ptr<const core::Discretization> disc,
             const snap::Input& input, const core::ProblemData& problem,
             KeffOptions options);

  KeffResult run();

  [[nodiscard]] const std::vector<GroupRange>& groupsets() const {
    return sets_;
  }
  [[nodiscard]] int num_groupsets() const {
    return static_cast<int>(sets_.size());
  }
  /// Global scalar flux (normalised to unit fission production).
  [[nodiscard]] const core::NodalField& scalar_flux() const { return phi_; }
  [[nodiscard]] double k() const { return k_; }
  [[nodiscard]] const core::TransportSolver& groupset_solver(int set) const {
    return *solvers_[static_cast<std::size_t>(set)];
  }

  /// Summed per-groupset balance with the fission ledger filled: at
  /// convergence fission/k = absorption + leakage (up to the iteration
  /// tolerance); per-group entries live at their global group index.
  [[nodiscard]] core::BalanceReport balance() const;

  /// Forwarded to every groupset solver.
  void set_observer(core::IterationObserver* observer);
  void enable_preassembly(core::PreassembledOperator::Mode mode);
  [[nodiscard]] std::size_t preassembly_bytes() const;

 private:
  std::shared_ptr<const core::Discretization> disc_;
  snap::Input input_;            // global (ng = library ng)
  core::ProblemData problem_;    // global fission-extended data
  KeffOptions options_;
  std::vector<GroupRange> sets_;
  std::vector<std::unique_ptr<core::TransportSolver>> solvers_;

  core::NodalField phi_;                   // global scalar flux
  std::vector<core::NodalField> phi_mom_;  // nmom > 1 companions
  /// Normalised fission source F(e*n + i) = sum_g nu_sigf phi_g, scaled
  /// to unit production.
  std::vector<double> fission_;
  double k_ = 1.0;
  core::IterationObserver* observer_ = nullptr;

  /// sum_e sum_i w_i F(e, i) (serial, element-ordered).
  [[nodiscard]] double production(const std::vector<double>& fission) const;
  void compute_fission(std::vector<double>& out) const;
  /// Fill a groupset solver's coupling source with chi/k fission plus
  /// out-of-set scattering from the global flux.
  void fill_coupling(int set);
  void scatter_flux(int set);  // global slice -> set solver state
  void gather_flux(int set);   // set solver flux -> global slice
  void scale_state(double factor);
};

}  // namespace unsnap::xs
