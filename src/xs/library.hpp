#pragma once

#include <string>
#include <vector>

#include "snap/data.hpp"
#include "util/ndarray.hpp"

namespace unsnap::xs {

/// Multigroup cross-section library: a MATXS-lite plain-text format and
/// its in-memory model. One library carries the group structure (ng,
/// scattering orders, optional group speeds) and a set of named materials
/// with per-group totals, full group-to-group scattering matrices up to
/// order nmom-1, and optional fission data (nu_sigf / chi). The deck's
/// `[xs] file = ...` section loads one of these; SNAP's synthetic group
/// structure is generated as an instance of the same model (synthetic()),
/// so the artificial decks and a real library flow through one lowering.
///
/// File format (line-oriented, `#`/`!` comments, whitespace-separated
/// tokens; every error is reported as `file:line:column: message`):
///
///   # UnSNAP multigroup cross-section library
///   groups 2                    # mandatory, before any material
///   moments 1                   # optional scattering orders (default 1)
///   velocities 2.2e3 4.4e2      # optional group speeds (mode = time)
///   material fuel
///     sigt 0.60 1.20            # per-group totals (mandatory)
///     sigs 0.40 0.30            # optional total scattering override
///                               # (default: l = 0 row sums)
///     nu_sigf 0.30 0.90         # fission production (with chi only)
///     chi 1 0                   # fission spectrum, must sum to 1
///     scatter 0 0 0 0.35        # scatter <l> <g_from> <g_to> <value>
///     scatter 0 0 1 0.05
///     scatter 0 1 1 0.30
///   end
///
/// Unlisted scatter entries are zero; entries above l = 0 may be negative
/// (anisotropy corrections), the l = 0 matrix may not.
struct Material {
  std::string name;
  std::vector<double> sigt;        // [g] total
  /// Total scattering per group; empty means the l = 0 row sums of
  /// `sigs`. Carried separately so a library lowered from generated data
  /// (whose sigs was defined as c * sigt, not as a sum) round-trips
  /// bit-exactly.
  std::vector<double> sigs_total;
  std::vector<double> nu_sigf;     // [g]; empty = non-fissile
  std::vector<double> chi;         // [g]; empty = non-fissile
  NDArray<double, 3> sigs;         // [l][g_from][g_to], l = 0..nmom-1

  [[nodiscard]] bool fissile() const { return !nu_sigf.empty(); }
  /// Effective total scattering of group g (override or l = 0 row sum).
  [[nodiscard]] double scattering_total(int g) const;

  [[nodiscard]] bool operator==(const Material& o) const;
};

struct Library {
  int ng = 0;
  int nmom = 1;
  std::vector<double> velocity;    // [g] group speeds; empty = none
  std::vector<Material> materials;

  /// Index of the named material, -1 when absent.
  [[nodiscard]] int index_of(const std::string& name) const;
  [[nodiscard]] bool has_fission() const;
  /// True when no material has an upscatter entry (g_from < g_to never
  /// maps upward, i.e. every transfer satisfies g_to >= g_from).
  [[nodiscard]] bool pure_downscatter() const;

  /// Shape/positivity checks for programmatically built libraries (the
  /// parser enforces the same rules with file:line:column locations).
  void validate() const;

  /// Lower onto the solver's cross-section tables. `names` selects and
  /// orders the materials (empty = all, library order); `nmom_out` is the
  /// number of scattering orders to carry (0 = all of nmom; must not
  /// exceed it — the builder requires an exact match with the angular
  /// spec). Fission columns are populated whenever any selected material
  /// is fissile (zero rows for the others).
  [[nodiscard]] snap::CrossSections cross_sections(
      const std::vector<std::string>& names = {}, int nmom_out = 0) const;

  /// SNAP's artificial two-material group structure as a library —
  /// the single source of the generated data (snap::make_cross_sections
  /// is exactly synthetic(...).cross_sections()).
  [[nodiscard]] static Library synthetic(int ng, double scattering_ratio,
                                         int nmom = 1);

  [[nodiscard]] bool operator==(const Library& o) const;
};

/// Parse library text. Throws InvalidInput with a `source:line:column:`
/// prefix on every lexical and semantic error.
[[nodiscard]] Library read_library_text(const std::string& text,
                                        const std::string& source = "<xs>");
/// Reads from the filesystem; throws InvalidInput ("cannot open ...")
/// if unreadable.
[[nodiscard]] Library read_library_file(const std::string& path);

/// Serialise in the text format above. Doubles print via %.17g, so
/// read_library_text(write_library(lib)) == lib exactly.
[[nodiscard]] std::string write_library(const Library& lib);

// --- groupsets -------------------------------------------------------------

/// One contiguous, inclusive block of energy groups solved together by
/// the k-eigenvalue driver's block Gauss-Seidel outer.
struct GroupRange {
  int lo = 0;
  int hi = 0;
  [[nodiscard]] int size() const { return hi - lo + 1; }
  [[nodiscard]] bool operator==(const GroupRange&) const = default;
};

/// Parse a deck groupset spec "a:b,c:d,..." (a single group may be
/// spelled "a"). The ranges must tile 0..ng-1 contiguously in ascending
/// order. Throws InvalidInput on malformed specs.
[[nodiscard]] std::vector<GroupRange> parse_groupsets(const std::string& spec,
                                                      int ng);
[[nodiscard]] std::string format_groupsets(
    const std::vector<GroupRange>& sets);

/// The maximal downscatter-ordered partition of 0..ng-1: a boundary is
/// placed after group g wherever no material scatters (at any order) from
/// a group above g back to a group at or below g, so solving the blocks
/// low-to-high needs no lagged upscatter. Pure-downscatter libraries
/// split into one groupset per group; fully-coupled (upscattering) data
/// collapses to a single fused block.
[[nodiscard]] std::vector<GroupRange> default_groupsets(
    const snap::CrossSections& xs);

}  // namespace unsnap::xs
