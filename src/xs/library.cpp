#include "xs/library.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "snap/deck.hpp"
#include "util/assert.hpp"

namespace unsnap::xs {

double Material::scattering_total(int g) const {
  if (!sigs_total.empty()) return sigs_total[static_cast<std::size_t>(g)];
  if (sigs.size() == 0) return 0.0;
  double sum = 0.0;
  const int ng = static_cast<int>(sigs.extent(1));
  for (int gt = 0; gt < ng; ++gt) sum += sigs(0, g, gt);
  return sum;
}

namespace {

bool same_array(const NDArray<double, 3>& a, const NDArray<double, 3>& b) {
  for (int d = 0; d < 3; ++d)
    if (a.extent(d) != b.extent(d)) return false;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (pa[i] != pb[i]) return false;
  return true;
}

}  // namespace

bool Material::operator==(const Material& o) const {
  return name == o.name && sigt == o.sigt && sigs_total == o.sigs_total &&
         nu_sigf == o.nu_sigf && chi == o.chi && same_array(sigs, o.sigs);
}

bool Library::operator==(const Library& o) const {
  return ng == o.ng && nmom == o.nmom && velocity == o.velocity &&
         materials == o.materials;
}

int Library::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < materials.size(); ++i)
    if (materials[i].name == name) return static_cast<int>(i);
  return -1;
}

bool Library::has_fission() const {
  return std::any_of(materials.begin(), materials.end(),
                     [](const Material& m) { return m.fissile(); });
}

bool Library::pure_downscatter() const {
  for (const Material& m : materials) {
    if (m.sigs.size() == 0) continue;
    for (int l = 0; l < static_cast<int>(m.sigs.extent(0)); ++l)
      for (int gf = 0; gf < ng; ++gf)
        for (int gt = 0; gt < gf; ++gt)
          if (m.sigs(l, gf, gt) != 0.0) return false;
  }
  return true;
}

void Library::validate() const {
  require(ng >= 1, "xs library: ng must be positive");
  require(nmom >= 1 && nmom <= 6, "xs library: nmom must be in 1..6");
  const auto gc = static_cast<std::size_t>(ng);
  require(velocity.empty() || velocity.size() == gc,
          "xs library: velocities need one value per group");
  for (double v : velocity)
    require(v > 0.0, "xs library: group velocities must be positive");
  require(!materials.empty(), "xs library: no materials");
  for (const Material& m : materials) {
    const std::string where = "xs library: material '" + m.name + "': ";
    require(!m.name.empty(), "xs library: material with empty name");
    require(m.sigt.size() == gc, where + "sigt needs one value per group");
    for (double v : m.sigt) require(v > 0.0, where + "sigt must be positive");
    require(m.sigs_total.empty() || m.sigs_total.size() == gc,
            where + "sigs needs one value per group");
    require(m.nu_sigf.empty() == m.chi.empty(),
            where + "nu_sigf and chi must come together");
    if (m.fissile()) {
      require(m.nu_sigf.size() == gc && m.chi.size() == gc,
              where + "fission data needs one value per group");
      double sum = 0.0;
      for (double v : m.chi) {
        require(v >= 0.0, where + "chi must be non-negative");
        sum += v;
      }
      require(std::abs(sum - 1.0) <= 1e-12, where + "chi must sum to 1");
      for (double v : m.nu_sigf)
        require(v >= 0.0, where + "nu_sigf must be non-negative");
    }
    require(m.sigs.size() == 0 ||
                (m.sigs.extent(0) == static_cast<std::size_t>(nmom) &&
                 m.sigs.extent(1) == gc && m.sigs.extent(2) == gc),
            where + "scatter matrix must be nmom x ng x ng");
    if (m.sigs.size() != 0)
      for (int gf = 0; gf < ng; ++gf)
        for (int gt = 0; gt < ng; ++gt)
          require(m.sigs(0, gf, gt) >= 0.0,
                  where + "l = 0 scatter entries must be non-negative");
    for (int g = 0; g < ng; ++g) {
      const double s = m.scattering_total(g);
      require(s <= m.sigt[static_cast<std::size_t>(g)] * (1.0 + 1e-12),
              where + "group " + std::to_string(g) +
                  " scattering exceeds the total cross section");
    }
  }
}

// --- parsing ---------------------------------------------------------------

namespace {

struct Token {
  std::string text;
  int line = 0;
  int column = 0;
};

[[noreturn]] void fail(const std::string& source, int line, int column,
                       const std::string& message) {
  throw InvalidInput(source + ":" + std::to_string(line) + ":" +
                     std::to_string(column) + ": " + message);
}

[[noreturn]] void fail(const std::string& source, const Token& t,
                       const std::string& message) {
  fail(source, t.line, t.column, message);
}

// One non-blank line of the library file after comment stripping.
struct Line {
  std::vector<Token> tokens;
};

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol;
    ++line_no;
    Line line;
    for (std::size_t i = pos; i < end;) {
      const char c = text[i];
      if (c == '#' || c == '!') break;
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < end && text[i] != ' ' && text[i] != '\t' &&
             text[i] != '\r' && text[i] != '#' && text[i] != '!')
        ++i;
      line.tokens.push_back({text.substr(start, i - start), line_no,
                             static_cast<int>(start - pos) + 1});
    }
    if (!line.tokens.empty()) lines.push_back(std::move(line));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return lines;
}

double parse_double(const std::string& source, const Token& t) {
  const char* begin = t.text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0')
    fail(source, t, "expected a number, got '" + t.text + "'");
  return v;
}

int parse_int(const std::string& source, const Token& t) {
  const char* begin = t.text.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0')
    fail(source, t, "expected an integer, got '" + t.text + "'");
  return static_cast<int>(v);
}

// Parse the ng values following a per-group vector keyword.
std::vector<double> group_values(const std::string& source, const Line& line,
                                 int ng) {
  const Token& kw = line.tokens[0];
  const int got = static_cast<int>(line.tokens.size()) - 1;
  if (got != ng)
    fail(source, kw,
         "'" + kw.text + "' needs " + std::to_string(ng) + " values (got " +
             std::to_string(got) + ")");
  std::vector<double> values(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g)
    values[static_cast<std::size_t>(g)] =
        parse_double(source, line.tokens[static_cast<std::size_t>(g) + 1]);
  return values;
}

}  // namespace

Library read_library_text(const std::string& text, const std::string& source) {
  Library lib;
  lib.ng = 0;
  const std::vector<Line> lines = tokenize(text);

  bool in_material = false;
  bool moments_set = false;
  Material current;
  Token material_token;  // the `material` keyword of the open material
  Token chi_token;
  std::vector<char> scatter_seen;

  auto require_groups = [&](const Token& kw) {
    if (lib.ng == 0)
      fail(source, kw, "'" + kw.text + "' before the groups declaration");
  };

  for (const Line& line : lines) {
    const Token& kw = line.tokens[0];
    if (!in_material) {
      if (kw.text == "groups") {
        if (lib.ng != 0) fail(source, kw, "duplicate groups declaration");
        if (line.tokens.size() != 2)
          fail(source, kw, "'groups' needs one value");
        const int ng = parse_int(source, line.tokens[1]);
        if (ng < 1) fail(source, line.tokens[1], "groups must be positive");
        lib.ng = ng;
      } else if (kw.text == "moments") {
        if (moments_set) fail(source, kw, "duplicate moments declaration");
        if (!lib.materials.empty())
          fail(source, kw, "moments must precede the first material");
        if (line.tokens.size() != 2)
          fail(source, kw, "'moments' needs one value");
        const int nmom = parse_int(source, line.tokens[1]);
        if (nmom < 1 || nmom > 6)
          fail(source, line.tokens[1], "moments must be in 1..6");
        lib.nmom = nmom;
        moments_set = true;
      } else if (kw.text == "velocities") {
        require_groups(kw);
        if (!lib.velocity.empty())
          fail(source, kw, "duplicate velocities declaration");
        lib.velocity = group_values(source, line, lib.ng);
        for (std::size_t g = 0; g < lib.velocity.size(); ++g)
          if (lib.velocity[g] <= 0.0)
            fail(source, line.tokens[g + 1],
                 "group velocities must be positive");
      } else if (kw.text == "material") {
        require_groups(kw);
        if (line.tokens.size() != 2)
          fail(source, kw, "'material' needs a name");
        const std::string& name = line.tokens[1].text;
        if (lib.index_of(name) >= 0)
          fail(source, line.tokens[1], "duplicate material '" + name + "'");
        current = Material{};
        current.name = name;
        current.sigs.resize({static_cast<std::size_t>(lib.nmom),
                             static_cast<std::size_t>(lib.ng),
                             static_cast<std::size_t>(lib.ng)},
                            0.0);
        scatter_seen.assign(
            static_cast<std::size_t>(lib.nmom * lib.ng * lib.ng), 0);
        material_token = kw;
        chi_token = Token{};
        in_material = true;
      } else if (kw.text == "end") {
        fail(source, kw, "'end' without an open material");
      } else {
        fail(source, kw, "unknown keyword '" + kw.text + "'");
      }
      continue;
    }

    // Inside a material block.
    const std::string where = "material '" + current.name + "': ";
    if (kw.text == "sigt") {
      if (!current.sigt.empty()) fail(source, kw, where + "duplicate sigt");
      current.sigt = group_values(source, line, lib.ng);
      for (std::size_t g = 0; g < current.sigt.size(); ++g)
        if (current.sigt[g] <= 0.0)
          fail(source, line.tokens[g + 1], where + "sigt must be positive");
    } else if (kw.text == "sigs") {
      if (!current.sigs_total.empty())
        fail(source, kw, where + "duplicate sigs");
      current.sigs_total = group_values(source, line, lib.ng);
      for (std::size_t g = 0; g < current.sigs_total.size(); ++g)
        if (current.sigs_total[g] < 0.0)
          fail(source, line.tokens[g + 1],
               where + "sigs must be non-negative");
    } else if (kw.text == "nu_sigf") {
      if (!current.nu_sigf.empty())
        fail(source, kw, where + "duplicate nu_sigf");
      current.nu_sigf = group_values(source, line, lib.ng);
      for (std::size_t g = 0; g < current.nu_sigf.size(); ++g)
        if (current.nu_sigf[g] < 0.0)
          fail(source, line.tokens[g + 1],
               where + "nu_sigf must be non-negative");
    } else if (kw.text == "chi") {
      if (!current.chi.empty()) fail(source, kw, where + "duplicate chi");
      current.chi = group_values(source, line, lib.ng);
      for (std::size_t g = 0; g < current.chi.size(); ++g)
        if (current.chi[g] < 0.0)
          fail(source, line.tokens[g + 1],
               where + "chi must be non-negative");
      chi_token = kw;
    } else if (kw.text == "scatter") {
      if (line.tokens.size() != 5)
        fail(source, kw,
             where + "'scatter' needs <l> <g_from> <g_to> <value>");
      const int l = parse_int(source, line.tokens[1]);
      if (l < 0 || l >= lib.nmom)
        fail(source, line.tokens[1],
             where + "scatter order " + std::to_string(l) +
                 " out of range 0.." + std::to_string(lib.nmom - 1));
      const int gf = parse_int(source, line.tokens[2]);
      const int gt = parse_int(source, line.tokens[3]);
      for (int gi = 0; gi < 2; ++gi) {
        const int g = gi == 0 ? gf : gt;
        if (g < 0 || g >= lib.ng)
          fail(source, line.tokens[static_cast<std::size_t>(gi) + 2],
               where + "group " + std::to_string(g) + " out of range 0.." +
                   std::to_string(lib.ng - 1));
      }
      const double value = parse_double(source, line.tokens[4]);
      if (l == 0 && value < 0.0)
        fail(source, line.tokens[4],
             where + "l = 0 scatter entries must be non-negative");
      const std::size_t slot =
          static_cast<std::size_t>((l * lib.ng + gf) * lib.ng + gt);
      if (scatter_seen[slot])
        fail(source, kw,
             where + "duplicate scatter entry (" + std::to_string(l) + ", " +
                 std::to_string(gf) + ", " + std::to_string(gt) + ")");
      scatter_seen[slot] = 1;
      current.sigs(l, gf, gt) = value;
    } else if (kw.text == "end") {
      if (current.sigt.empty())
        fail(source, kw, where + "missing sigt");
      if (current.nu_sigf.empty() != current.chi.empty())
        fail(source, kw,
             where + (current.chi.empty() ? "nu_sigf without chi"
                                          : "chi without nu_sigf"));
      if (current.fissile()) {
        double sum = 0.0;
        for (double v : current.chi) sum += v;
        if (std::abs(sum - 1.0) > 1e-12)
          fail(source, chi_token,
               where + "chi must sum to 1 (got " + snap::deck_double(sum) +
                   ")");
      }
      for (int g = 0; g < lib.ng; ++g) {
        const double s = current.scattering_total(g);
        if (s > current.sigt[static_cast<std::size_t>(g)] * (1.0 + 1e-12))
          fail(source, kw,
               where + "group " + std::to_string(g) +
                   " scattering exceeds the total cross section");
      }
      lib.materials.push_back(std::move(current));
      in_material = false;
    } else {
      fail(source, kw, where + "unknown keyword '" + kw.text + "'");
    }
  }

  if (in_material)
    fail(source, material_token,
         "material '" + current.name + "' is not closed (missing end)");
  if (lib.ng == 0)
    throw InvalidInput(source + ": missing 'groups' declaration");
  if (lib.materials.empty())
    throw InvalidInput(source + ": library has no materials");
  return lib;
}

Library read_library_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(),
          "cannot open cross-section library '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return read_library_text(text.str(), path);
}

std::string write_library(const Library& lib) {
  std::ostringstream out;
  out << "# UnSNAP multigroup cross-section library\n";
  out << "groups " << lib.ng << "\n";
  if (lib.nmom != 1) out << "moments " << lib.nmom << "\n";
  if (!lib.velocity.empty()) {
    out << "velocities";
    for (double v : lib.velocity) out << " " << snap::deck_double(v);
    out << "\n";
  }
  for (const Material& m : lib.materials) {
    out << "material " << m.name << "\n";
    auto vec = [&](const char* key, const std::vector<double>& values) {
      if (values.empty()) return;
      out << "  " << key;
      for (double v : values) out << " " << snap::deck_double(v);
      out << "\n";
    };
    vec("sigt", m.sigt);
    vec("sigs", m.sigs_total);
    vec("nu_sigf", m.nu_sigf);
    vec("chi", m.chi);
    if (m.sigs.size() != 0)
      for (int l = 0; l < static_cast<int>(m.sigs.extent(0)); ++l)
        for (int gf = 0; gf < lib.ng; ++gf)
          for (int gt = 0; gt < lib.ng; ++gt)
            if (m.sigs(l, gf, gt) != 0.0)
              out << "  scatter " << l << " " << gf << " " << gt << " "
                  << snap::deck_double(m.sigs(l, gf, gt)) << "\n";
    out << "end\n";
  }
  return out.str();
}

// --- lowering --------------------------------------------------------------

snap::CrossSections Library::cross_sections(
    const std::vector<std::string>& names, int nmom_out) const {
  std::vector<int> pick;
  if (names.empty()) {
    for (std::size_t i = 0; i < materials.size(); ++i)
      pick.push_back(static_cast<int>(i));
  } else {
    for (const std::string& name : names) {
      const int idx = index_of(name);
      require(idx >= 0,
              "cross sections: unknown material '" + name + "' in library");
      pick.push_back(idx);
    }
  }
  const int nm_out = nmom_out == 0 ? nmom : nmom_out;
  require(nm_out >= 1 && nm_out <= nmom,
          "cross sections: requested " + std::to_string(nm_out) +
              " scattering orders but the library carries " +
              std::to_string(nmom));

  snap::CrossSections out;
  out.num_materials = static_cast<int>(pick.size());
  out.ng = ng;
  out.nmom = nm_out;
  const auto nm = static_cast<std::size_t>(out.num_materials);
  const auto gc = static_cast<std::size_t>(ng);
  out.sigt.resize({nm, gc});
  out.sigs.resize({nm, gc});
  out.siga.resize({nm, gc});
  out.slgg.resize({nm, gc, gc}, 0.0);
  if (nm_out > 1)
    out.slgg_hi.resize({nm, static_cast<std::size_t>(nm_out - 1), gc, gc},
                       0.0);
  const bool any_fissile = std::any_of(
      pick.begin(), pick.end(),
      [&](int idx) { return materials[static_cast<std::size_t>(idx)].fissile(); });
  if (any_fissile) {
    out.nu_sigf.resize({nm, gc}, 0.0);
    out.chi.resize({nm, gc}, 0.0);
  }

  for (std::size_t mi = 0; mi < pick.size(); ++mi) {
    const Material& m = materials[static_cast<std::size_t>(pick[mi])];
    const int mo = static_cast<int>(mi);
    for (int g = 0; g < ng; ++g) {
      out.sigt(mo, g) = m.sigt[static_cast<std::size_t>(g)];
      out.sigs(mo, g) = m.scattering_total(g);
      out.siga(mo, g) = out.sigt(mo, g) - out.sigs(mo, g);
    }
    if (m.sigs.size() != 0) {
      for (int gf = 0; gf < ng; ++gf)
        for (int gt = 0; gt < ng; ++gt)
          out.slgg(mo, gf, gt) = m.sigs(0, gf, gt);
      for (int l = 1; l < nm_out; ++l)
        for (int gf = 0; gf < ng; ++gf)
          for (int gt = 0; gt < ng; ++gt)
            out.slgg_hi(mo, l - 1, gf, gt) = m.sigs(l, gf, gt);
    }
    if (m.fissile()) {
      for (int g = 0; g < ng; ++g) {
        out.nu_sigf(mo, g) = m.nu_sigf[static_cast<std::size_t>(g)];
        out.chi(mo, g) = m.chi[static_cast<std::size_t>(g)];
      }
    }
  }
  return out;
}

Library Library::synthetic(int ng, double scattering_ratio, int nmom) {
  require(ng >= 1, "cross sections: ng must be positive");
  require(scattering_ratio >= 0.0 && scattering_ratio < 1.0,
          "cross sections: scattering ratio must be in [0, 1)");
  require(nmom >= 1 && nmom <= 6, "cross sections: nmom must be in 1..6");
  Library lib;
  lib.ng = ng;
  lib.nmom = nmom;
  const auto gc = static_cast<std::size_t>(ng);

  // SNAP-style generated group speeds, fastest group first (matches
  // core::TimeDependentSolver::snap_velocities).
  lib.velocity.resize(gc);
  for (int g = 0; g < ng; ++g)
    lib.velocity[static_cast<std::size_t>(g)] = 1.0 / (1.0 + 0.5 * g);

  // Material base data in the SNAP style: material 0 has sigt 1.0 with the
  // requested scattering ratio; material 1 is denser and slightly more
  // scattering (SNAP: sigt 2.0, c 0.6 when material 0 has c 0.5).
  const double base_sigt[2] = {1.0, 2.0};
  const double ratio[2] = {scattering_ratio,
                           std::min(0.95, scattering_ratio + 0.1)};

  for (int m = 0; m < 2; ++m) {
    Material mat;
    mat.name = m == 0 ? "snap0" : "snap1";
    mat.sigt.resize(gc);
    mat.sigs_total.resize(gc);
    mat.sigs.resize({static_cast<std::size_t>(nmom), gc, gc}, 0.0);
    for (int g = 0; g < ng; ++g) {
      // SNAP increments the totals by 0.01 per group.
      mat.sigt[static_cast<std::size_t>(g)] = base_sigt[m] + 0.01 * g;
      mat.sigs_total[static_cast<std::size_t>(g)] =
          ratio[m] * mat.sigt[static_cast<std::size_t>(g)];
    }

    // Transfer profile per source group: 70% in-group, 20% downscatter
    // spread geometrically over lower-energy groups (higher index), 10%
    // upscatter to the next higher-energy group. Edge groups fold the
    // missing components back in-group so rows always sum to sigs.
    for (int g = 0; g < ng; ++g) {
      double w_in = 0.7, w_down = 0.2, w_up = 0.1;
      if (g == 0) {
        w_in += w_up;
        w_up = 0.0;
      }
      if (g == ng - 1) {
        w_in += w_down;
        w_down = 0.0;
      }
      const double total = mat.sigs_total[static_cast<std::size_t>(g)];
      mat.sigs(0, g, g) += w_in * total;
      if (w_up > 0.0) mat.sigs(0, g, g - 1) += w_up * total;
      if (w_down > 0.0) {
        // Geometric decay with ratio 1/2 over groups g+1..ng-1, normalised.
        double norm = 0.0;
        for (int gp = g + 1; gp < ng; ++gp)
          norm += std::pow(0.5, gp - g);
        for (int gp = g + 1; gp < ng; ++gp)
          mat.sigs(0, g, gp) += w_down * total * std::pow(0.5, gp - g) / norm;
      }
    }

    // Higher Legendre orders decay geometrically (mildly forward peaked).
    for (int l = 1; l < nmom; ++l)
      for (int g = 0; g < ng; ++g)
        for (int gp = 0; gp < ng; ++gp)
          mat.sigs(l, g, gp) = std::pow(0.4, l) * mat.sigs(0, g, gp);

    lib.materials.push_back(std::move(mat));
  }
  return lib;
}

// --- groupsets -------------------------------------------------------------

std::vector<GroupRange> parse_groupsets(const std::string& spec, int ng) {
  std::vector<GroupRange> sets;
  std::vector<std::string> parts;
  std::string token;
  for (char c : spec) {
    if (c == ',') {
      parts.push_back(token);
      token.clear();
    } else if (c != ' ' && c != '\t') {
      token += c;
    }
  }
  parts.push_back(token);
  for (const std::string& part : parts) {
    require(!part.empty(), "groupsets: empty range in '" + spec + "'");
    int lo = 0, hi = 0;
    const std::size_t colon = part.find(':');
    auto to_int = [&](const std::string& s) {
      const char* begin = s.c_str();
      char* end = nullptr;
      const long v = std::strtol(begin, &end, 10);
      require(end != begin && *end == '\0' && !s.empty(),
              "groupsets: bad range '" + part + "'");
      return static_cast<int>(v);
    };
    if (colon == std::string::npos) {
      lo = hi = to_int(part);
    } else {
      lo = to_int(part.substr(0, colon));
      hi = to_int(part.substr(colon + 1));
    }
    require(lo <= hi, "groupsets: bad range '" + part + "' (lo > hi)");
    require(lo >= 0 && hi < ng,
            "groupsets: range '" + part + "' outside groups 0.." +
                std::to_string(ng - 1));
    sets.push_back({lo, hi});
  }
  require(sets.front().lo == 0, "groupsets: ranges must start at group 0");
  for (std::size_t i = 1; i < sets.size(); ++i)
    require(sets[i].lo == sets[i - 1].hi + 1,
            "groupsets: ranges must tile the groups contiguously (gap or "
            "overlap at group " +
                std::to_string(sets[i].lo) + ")");
  require(sets.back().hi == ng - 1,
          "groupsets: ranges must end at group " + std::to_string(ng - 1));
  return sets;
}

std::string format_groupsets(const std::vector<GroupRange>& sets) {
  std::string out;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(sets[i].lo);
    if (sets[i].hi != sets[i].lo) out += ":" + std::to_string(sets[i].hi);
  }
  return out;
}

std::vector<GroupRange> default_groupsets(const snap::CrossSections& xs) {
  const int ng = xs.ng;
  // boundary_ok[g]: no material scatters (any order) from a group above g
  // back to a group at or below g, so a groupset may end at g.
  std::vector<char> boundary_ok(static_cast<std::size_t>(ng), 1);
  for (int g = 0; g < ng - 1; ++g) {
    bool ok = true;
    for (int m = 0; ok && m < xs.num_materials; ++m)
      for (int gf = g + 1; ok && gf < ng; ++gf)
        for (int gt = 0; ok && gt <= g; ++gt) {
          if (xs.slgg(m, gf, gt) != 0.0) ok = false;
          for (int l = 1; ok && l < xs.nmom; ++l)
            if (xs.slgg_hi(m, l - 1, gf, gt) != 0.0) ok = false;
        }
    boundary_ok[static_cast<std::size_t>(g)] = ok ? 1 : 0;
  }
  std::vector<GroupRange> sets;
  int lo = 0;
  for (int g = 0; g < ng; ++g) {
    if (g == ng - 1 || boundary_ok[static_cast<std::size_t>(g)]) {
      sets.push_back({lo, g});
      lo = g + 1;
    }
  }
  return sets;
}

}  // namespace unsnap::xs
