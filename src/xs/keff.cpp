#include "xs/keff.hpp"

#include <cmath>
#include <utility>

#include "angular/harmonics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace unsnap::xs {

using core::NodalField;

KeffSolver::KeffSolver(std::shared_ptr<const core::Discretization> disc,
                       const snap::Input& input,
                       const core::ProblemData& problem, KeffOptions options)
    : disc_(std::move(disc)),
      input_(input),
      problem_(problem),
      options_(std::move(options)) {
  require(problem_.xs.has_fission(),
          "keff: the cross sections carry no fission data (nu_sigf/chi)");
  require(problem_.xs.ng == input_.ng,
          "keff: cross-section ng disagrees with the input");
  require(options_.k_tol > 0.0 && options_.fission_tol > 0.0,
          "keff: tolerances must be positive");
  require(options_.max_outers >= 1, "keff: max_outers must be at least 1");

  sets_ = options_.groupsets.empty() ? default_groupsets(problem_.xs)
                                     : options_.groupsets;
  require(!sets_.empty() && sets_.front().lo == 0 &&
              sets_.back().hi == input_.ng - 1,
          "keff: groupsets must cover groups 0.." +
              std::to_string(input_.ng - 1));
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    require(sets_[s].lo <= sets_[s].hi, "keff: groupset lo > hi");
    if (s > 0)
      require(sets_[s].lo == sets_[s - 1].hi + 1,
              "keff: groupsets must tile the groups contiguously");
  }

  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  const snap::CrossSections& gxs = problem_.xs;

  phi_ = NodalField(input_.layout, ne, input_.ng, n);
  if (input_.nmom > 1) {
    const int extra = input_.nmom * input_.nmom - 1;
    phi_mom_.assign(static_cast<std::size_t>(extra),
                    NodalField(input_.layout, ne, input_.ng, n));
  }
  fission_.assign(static_cast<std::size_t>(ne) * n, 0.0);

  // One TransportSolver per groupset over the shared discretisation: the
  // sliced cross sections keep the *global* totals (so absorption stays
  // physical in the per-set balance) and carry only the in-set transfer
  // block; everything that couples across the set boundary arrives via
  // the coupling source. The external source is zero — keff is a pure
  // eigenvalue problem.
  for (const GroupRange& set : sets_) {
    const int sg = set.size();
    const auto nm = static_cast<std::size_t>(gxs.num_materials);
    const auto sgc = static_cast<std::size_t>(sg);
    snap::CrossSections sxs;
    sxs.num_materials = gxs.num_materials;
    sxs.ng = sg;
    sxs.nmom = gxs.nmom;
    sxs.sigt.resize({nm, sgc});
    sxs.sigs.resize({nm, sgc});
    sxs.siga.resize({nm, sgc});
    sxs.slgg.resize({nm, sgc, sgc}, 0.0);
    if (gxs.nmom > 1)
      sxs.slgg_hi.resize(
          {nm, static_cast<std::size_t>(gxs.nmom - 1), sgc, sgc}, 0.0);
    for (int m = 0; m < gxs.num_materials; ++m) {
      for (int gl = 0; gl < sg; ++gl) {
        const int g = set.lo + gl;
        sxs.sigt(m, gl) = gxs.sigt(m, g);
        sxs.sigs(m, gl) = gxs.sigs(m, g);
        sxs.siga(m, gl) = gxs.siga(m, g);
        for (int gl2 = 0; gl2 < sg; ++gl2) {
          sxs.slgg(m, gl, gl2) = gxs.slgg(m, g, set.lo + gl2);
          for (int l = 1; l < gxs.nmom; ++l)
            sxs.slgg_hi(m, l - 1, gl, gl2) =
                gxs.slgg_hi(m, l - 1, g, set.lo + gl2);
        }
      }
    }
    NDArray<double, 2> qz({static_cast<std::size_t>(ne), sgc}, 0.0);
    snap::Input si = input_;
    si.ng = sg;
    core::ProblemData pd(*disc_, std::move(sxs), problem_.material,
                         std::move(qz));
    solvers_.push_back(std::make_unique<core::TransportSolver>(
        disc_, si, std::move(pd)));
  }
}

void KeffSolver::set_observer(core::IterationObserver* observer) {
  observer_ = observer;
  for (auto& solver : solvers_) solver->set_observer(observer);
}

void KeffSolver::enable_preassembly(core::PreassembledOperator::Mode mode) {
  for (auto& solver : solvers_) solver->enable_preassembly(mode);
}

std::size_t KeffSolver::preassembly_bytes() const {
  std::size_t bytes = 0;
  for (const auto& solver : solvers_)
    if (solver->preassembly() != nullptr)
      bytes += solver->preassembly()->bytes();
  return bytes;
}

double KeffSolver::production(const std::vector<double>& fission) const {
  const core::ElementIntegrals& ints = disc_->integrals();
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  double total = 0.0;
  for (int e = 0; e < ne; ++e) {
    const double* w = ints.node_weights(e);
    const double* f = fission.data() + static_cast<std::size_t>(e) * n;
    double acc = 0.0;
    for (int i = 0; i < n; ++i) acc += w[i] * f[i];
    total += acc;
  }
  return total;
}

void KeffSolver::compute_fission(std::vector<double>& out) const {
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  out.assign(static_cast<std::size_t>(ne) * n, 0.0);
  for (int e = 0; e < ne; ++e) {
    const int m = problem_.material[static_cast<std::size_t>(e)];
    double* f = out.data() + static_cast<std::size_t>(e) * n;
    for (int g = 0; g < input_.ng; ++g) {
      const double nsf = problem_.xs.nu_sigf(m, g);
      if (nsf == 0.0) continue;
      const double* ph = phi_.at(e, g);
      for (int i = 0; i < n; ++i) f[i] += nsf * ph[i];
    }
  }
}

void KeffSolver::fill_coupling(int set) {
  const GroupRange& range = sets_[static_cast<std::size_t>(set)];
  core::TransportSolver& solver = *solvers_[static_cast<std::size_t>(set)];
  const snap::CrossSections& gxs = problem_.xs;
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  const int ng = input_.ng;
  const double inv_k = 1.0 / k_;

  NodalField& coupling = solver.coupling_source();
#pragma omp parallel for schedule(static)
  for (int e = 0; e < ne; ++e) {
    const int m = problem_.material[static_cast<std::size_t>(e)];
    const double* f = fission_.data() + static_cast<std::size_t>(e) * n;
    for (int gl = 0; gl < range.size(); ++gl) {
      const int g = range.lo + gl;
      double* c = coupling.at(e, gl);
      const double chi_over_k = gxs.chi(m, g) * inv_k;
      for (int i = 0; i < n; ++i) c[i] = chi_over_k * f[i];
      for (int gp = 0; gp < ng; ++gp) {
        if (gp >= range.lo && gp <= range.hi) continue;
        const double s = gxs.slgg(m, gp, g);
        if (s == 0.0) continue;
        const double* ph = phi_.at(e, gp);
        for (int i = 0; i < n; ++i) c[i] += s * ph[i];
      }
    }
  }

  if (input_.nmom > 1) {
    std::vector<NodalField>& cm = solver.coupling_source_moments();
    for (std::size_t mom = 0; mom < cm.size(); ++mom) {
      // Flat harmonic index mom + 1; fission is isotropic, so only the
      // out-of-set scattering of degree l feeds the moment source.
      const int l =
          angular::SphericalHarmonics::degree_of(static_cast<int>(mom) + 1);
      NodalField& target = cm[mom];
      const NodalField& phim = phi_mom_[mom];
#pragma omp parallel for schedule(static)
      for (int e = 0; e < ne; ++e) {
        const int m = problem_.material[static_cast<std::size_t>(e)];
        for (int gl = 0; gl < range.size(); ++gl) {
          const int g = range.lo + gl;
          double* c = target.at(e, gl);
          for (int i = 0; i < n; ++i) c[i] = 0.0;
          for (int gp = 0; gp < ng; ++gp) {
            if (gp >= range.lo && gp <= range.hi) continue;
            const double s = gxs.slgg_hi(m, l - 1, gp, g);
            if (s == 0.0) continue;
            const double* ph = phim.at(e, gp);
            for (int i = 0; i < n; ++i) c[i] += s * ph[i];
          }
        }
      }
    }
  }
}

void KeffSolver::scatter_flux(int set) {
  const GroupRange& range = sets_[static_cast<std::size_t>(set)];
  core::TransportSolver& solver = *solvers_[static_cast<std::size_t>(set)];
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  NodalField& sp = solver.scalar_flux();
  for (int e = 0; e < ne; ++e)
    for (int gl = 0; gl < range.size(); ++gl) {
      const double* src = phi_.at(e, range.lo + gl);
      double* dst = sp.at(e, gl);
      for (int i = 0; i < n; ++i) dst[i] = src[i];
    }
  std::vector<NodalField>& smom = solver.flux_moments();
  for (std::size_t mom = 0; mom < smom.size(); ++mom)
    for (int e = 0; e < ne; ++e)
      for (int gl = 0; gl < range.size(); ++gl) {
        const double* src = phi_mom_[mom].at(e, range.lo + gl);
        double* dst = smom[mom].at(e, gl);
        for (int i = 0; i < n; ++i) dst[i] = src[i];
      }
}

void KeffSolver::gather_flux(int set) {
  const GroupRange& range = sets_[static_cast<std::size_t>(set)];
  const core::TransportSolver& solver =
      *solvers_[static_cast<std::size_t>(set)];
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  const NodalField& sp = solver.scalar_flux();
  for (int e = 0; e < ne; ++e)
    for (int gl = 0; gl < range.size(); ++gl) {
      const double* src = sp.at(e, gl);
      double* dst = phi_.at(e, range.lo + gl);
      for (int i = 0; i < n; ++i) dst[i] = src[i];
    }
  const std::vector<NodalField>& smom = solver.flux_moments();
  for (std::size_t mom = 0; mom < smom.size(); ++mom)
    for (int e = 0; e < ne; ++e)
      for (int gl = 0; gl < range.size(); ++gl) {
        const double* src = smom[mom].at(e, gl);
        double* dst = phi_mom_[mom].at(e, range.lo + gl);
        for (int i = 0; i < n; ++i) dst[i] = src[i];
      }
}

void KeffSolver::scale_state(double factor) {
  auto scale = [factor](double* data, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) data[i] *= factor;
  };
  scale(phi_.data(), phi_.size());
  for (NodalField& mom : phi_mom_) scale(mom.data(), mom.size());
  for (double& f : fission_) f *= factor;
  for (auto& solver : solvers_) {
    scale(solver->scalar_flux().data(), solver->scalar_flux().size());
    scale(solver->angular_flux().data(), solver->angular_flux().size());
    for (NodalField& mom : solver->flux_moments())
      scale(mom.data(), mom.size());
    // Reflective mirror data is psi-derived state and is read at the next
    // sweep start, so it scales with the rest.
    if (solver->has_boundary_values())
      scale(solver->boundary_values().data(),
            solver->boundary_values().size());
  }
}

KeffResult KeffSolver::run() {
  static obs::Gauge& keff_gauge = obs::MetricsRegistry::global().gauge(
      "unsnap_keff",
      "k-effective estimate after the latest power-iteration outer");

  KeffResult result;
  result.groupset_sweeps.assign(sets_.size(), 0);
  Stopwatch total;
  total.start();

  // Flat initial guess, normalised to unit fission production.
  phi_.fill(1.0);
  for (NodalField& mom : phi_mom_) mom.fill(0.0);
  compute_fission(fission_);
  const double p0 = production(fission_);
  require(p0 > 0.0,
          "keff: the initial flux produces no fission source (no fissile "
          "material intersects the mesh)");
  k_ = 1.0;
  scale_state(1.0 / p0);

  std::vector<double> fission_new;
  double previous_change = 0.0;
  for (int outer = 0; outer < options_.max_outers; ++outer) {
    OBS_SPAN("keff.outer", "outer", outer);

    // Block Gauss-Seidel over the groupsets in downscatter order: each
    // set solves with the freshest global flux of every other set.
    for (int s = 0; s < num_groupsets(); ++s) {
      fill_coupling(s);
      scatter_flux(s);
      const core::IterationResult r =
          solvers_[static_cast<std::size_t>(s)]->run();
      result.inners += r.inners;
      result.sweeps += r.sweeps;
      result.krylov_iters += r.krylov_iters;
      result.groupset_sweeps[static_cast<std::size_t>(s)] += r.sweeps;
      gather_flux(s);
    }

    compute_fission(fission_new);
    const double p = production(fission_new);
    require(p > 0.0,
            "keff: fission production vanished during the power iteration");
    const double k_new = k_ * p;
    const double k_change = std::abs(k_new - k_);
    k_ = k_new;

    // Renormalise everything to unit production so the iterate cannot
    // drift towards overflow/underflow at k far from 1.
    const double inv_p = 1.0 / p;
    for (double& f : fission_new) f *= inv_p;
    scale_state(inv_p);

    double change = 0.0;
    for (std::size_t i = 0; i < fission_new.size(); ++i) {
      const double d = std::abs(fission_new[i] - fission_[i]);
      const double ref = std::abs(fission_[i]);
      const double rel = ref > 1e-12 ? d / ref : d;
      if (rel > change) change = rel;
    }
    const double sigma =
        previous_change > 0.0 ? change / previous_change : 0.0;
    if (outer > 0) result.dominance_ratio = sigma;

    // Shifted-source extrapolation (Lyusternik): when the error decays
    // geometrically with ratio sigma, the limit lies sigma/(1 - sigma)
    // steps ahead of the last step. Applied sparingly (every fifth
    // outer) so the sigma estimate re-settles in between.
    if (options_.extrapolate && outer > 0 && (outer + 1) % 5 == 0 &&
        sigma > 0.05 && sigma < 0.95) {
      const double theta = sigma / (1.0 - sigma);
      for (std::size_t i = 0; i < fission_new.size(); ++i)
        fission_new[i] += theta * (fission_new[i] - fission_[i]);
      const double pe = production(fission_new);
      require(pe > 0.0, "keff: extrapolated fission source is non-positive");
      const double inv_pe = 1.0 / pe;
      for (double& f : fission_new) f *= inv_pe;
    }

    fission_.swap(fission_new);
    previous_change = change;
    ++result.outers;
    result.k_history.push_back(k_);
    result.final_k_change = k_change;
    result.final_fission_change = change;
    keff_gauge.set(k_);
    if (observer_ != nullptr)
      observer_->on_keff_outer(outer, k_, k_change, change);

    if (k_change <= options_.k_tol && change <= options_.fission_tol) {
      result.converged = true;
      break;
    }
  }

  result.k = k_;
  result.total_seconds = total.stop();
  return result;
}

core::BalanceReport KeffSolver::balance() const {
  core::BalanceReport total;
  const int ng = input_.ng;
  const auto gc = static_cast<std::size_t>(ng);
  total.group_source.assign(gc, 0.0);
  total.group_inflow.assign(gc, 0.0);
  total.group_fission.assign(gc, 0.0);
  total.group_absorption.assign(gc, 0.0);
  total.group_leakage.assign(gc, 0.0);

  for (int s = 0; s < num_groupsets(); ++s) {
    const GroupRange& range = sets_[static_cast<std::size_t>(s)];
    const core::BalanceReport r =
        solvers_[static_cast<std::size_t>(s)]->balance();
    total.source += r.source;
    total.inflow += r.inflow;
    total.absorption += r.absorption;
    total.leakage += r.leakage;
    for (int gl = 0; gl < range.size(); ++gl) {
      const auto g = static_cast<std::size_t>(range.lo + gl);
      const auto glu = static_cast<std::size_t>(gl);
      total.group_source[g] += r.group_source[glu];
      total.group_inflow[g] += r.group_inflow[glu];
      total.group_absorption[g] += r.group_absorption[glu];
      total.group_leakage[g] += r.group_leakage[glu];
    }
  }

  // Fission production enters the ledger scaled by 1/k — that is the
  // source the converged flux actually balances against.
  const core::ElementIntegrals& ints = disc_->integrals();
  const int ne = disc_->num_elements();
  const int n = disc_->num_nodes();
  for (int g = 0; g < ng; ++g) {
    double rate = 0.0;
    for (int e = 0; e < ne; ++e) {
      const int m = problem_.material[static_cast<std::size_t>(e)];
      const double nsf = problem_.xs.nu_sigf(m, g);
      if (nsf == 0.0) continue;
      const double* w = ints.node_weights(e);
      const double* ph = phi_.at(e, g);
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += w[i] * ph[i];
      rate += nsf * acc;
    }
    total.group_fission[static_cast<std::size_t>(g)] = rate / k_;
    total.fission += rate / k_;
  }
  return total;
}

}  // namespace unsnap::xs
