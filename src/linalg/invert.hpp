#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace unsnap::linalg {

/// Explicit inverse via LU (dgetri-style): used by the pre-assembled /
/// pre-inverted matrix mode the paper sketches as future work (§IV-B-1),
/// where each angle-group-element matrix is inverted once and every solve
/// becomes a matvec. `inv` must be n x n; `a` is destroyed.
void invert(MatrixView a, MatrixView inv, std::span<int> pivots);

/// FLOP-count helpers used by the benchmark harness to report arithmetic
/// intensity (paper §II-C quotes 0.67 N^3 for dgesv).
[[nodiscard]] constexpr double flops_lu_solve(int n) {
  return 2.0 / 3.0 * n * n * n + 2.0 * n * n;
}
[[nodiscard]] constexpr double flops_matvec(int n) { return 2.0 * n * n; }

}  // namespace unsnap::linalg
