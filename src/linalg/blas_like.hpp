#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace unsnap::linalg {

/// BLAS-like micro-kernels backing the blocked (LAPACK-style) LU. They are
/// deliberately written in the register-tiled style linear algebra
/// libraries use, because the point of the Table II comparison is
/// "library-grade blocked code vs fused hand-written elimination".

/// C -= A * B, row-major, cache-tiled. Shapes: A (m x k), B (k x n),
/// C (m x n).
void gemm_subtract(ConstMatrixView a, ConstMatrixView b, MatrixView c);

/// Solve L * X = B in place where L is the unit-lower-triangular factor
/// stored in the given square matrix (diagonal implicitly 1). B is
/// overwritten with X. Shapes: L (m x m), B (m x n).
void trsm_lower_unit(ConstMatrixView l, MatrixView b);

/// Rank-1 update used by the unblocked panel factorisation:
/// A22 -= col * row where col is (m x 1) and row is (1 x n).
void ger_subtract(const double* col, int col_stride, const double* row, int m,
                  int n, MatrixView a);

/// Flat-vector (level-1) kernels backing the matrix-free Krylov solvers in
/// accel/: the vectors are NodalField storage viewed as one long array.
/// The reductions are deliberately serial (SIMD only): their summation
/// order must not depend on the OpenMP thread count, or the GMRES
/// iterates — and every golden digest downstream of them — would stop
/// being thread-bitwise-invariant.

/// <x, y>; spans must have equal length. Empty spans dot to 0.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2 (0 for an empty span).
[[nodiscard]] double norm2(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

}  // namespace unsnap::linalg
