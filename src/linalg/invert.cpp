#include "linalg/invert.hpp"

#include "linalg/lu.hpp"
#include "util/assert.hpp"

namespace unsnap::linalg {

void invert(MatrixView a, MatrixView inv, std::span<int> pivots) {
  const int n = a.rows();
  UNSNAP_ASSERT(a.cols() == n && inv.rows() == n && inv.cols() == n);
  lu_factor(a, pivots);

  // Solve A x = e_k column by column. Columns of the row-major inverse are
  // strided, so stage each solve in a contiguous scratch column.
  AlignedVector<double> col(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) col[i] = (i == k) ? 1.0 : 0.0;
    lu_solve_factored(a, pivots, col);
    for (int i = 0; i < n; ++i) inv(i, k) = col[i];
  }
}

}  // namespace unsnap::linalg
