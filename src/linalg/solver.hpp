#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace unsnap::linalg {

/// Which local dense solver the sweep kernel uses (the paper's Table II
/// axis). GaussianElimination is the paper's hand-written fused solver;
/// LapackLu stands in for MKL dgesv (see lu.hpp); the NoPivot variant is an
/// ablation exploiting the coercivity of the transport matrices.
enum class SolverKind {
  GaussianElimination,
  GaussianEliminationNoPivot,
  LapackLu,
};

[[nodiscard]] std::string to_string(SolverKind kind);
[[nodiscard]] SolverKind solver_from_string(const std::string& name);

/// Per-thread scratch so the hot loop never allocates. Sized once for the
/// largest system the run will solve.
class SolveWorkspace {
 public:
  void reserve(int n) {
    if (static_cast<int>(pivots_.size()) < n) pivots_.resize(n);
  }
  [[nodiscard]] std::span<int> pivots(int n) {
    reserve(n);
    return {pivots_.data(), static_cast<std::size_t>(n)};
  }

 private:
  std::vector<int> pivots_;
};

/// Solve A x = b in place with the requested solver; A and b are destroyed
/// and b holds the solution on return.
void solve_in_place(SolverKind kind, MatrixView a, std::span<double> b,
                    SolveWorkspace& workspace);

}  // namespace unsnap::linalg
