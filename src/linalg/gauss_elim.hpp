#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace unsnap::linalg {

/// Hand-written dense Gaussian elimination, the paper's in-house solver
/// (§IV-B). The factorisation and right-hand-side updates are fused in a
/// single pass (no separate pivot array or triangular-solve call), which is
/// what makes it beat a library-style LU on small systems. Row updates are
/// vectorised with `omp simd` exactly as UnSNAP vectorised over element
/// nodes.
///
/// Destroys A and b; on return b holds the solution x.
/// Throws NumericalError if a pivot is (numerically) zero.
void gauss_solve(MatrixView a, std::span<double> b);

/// Variant without partial pivoting. The upwind DG transport matrices are
/// coercive (positive definite in the energy norm) so elimination without
/// pivoting is stable in practice; this removes the pivot search from the
/// critical path. Throws NumericalError on a zero pivot.
void gauss_solve_nopivot(MatrixView a, std::span<double> b);

}  // namespace unsnap::linalg
