#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace unsnap::linalg {

/// LAPACK-style dense LU with partial pivoting. This is the in-house
/// stand-in for Intel MKL's `dgesv` used by the paper's Table II: a
/// general-purpose, factor-then-solve library routine with pivot
/// bookkeeping and blocked trailing updates (panel width `kPanel`),
/// i.e. the structure that pays off once the matrix outgrows L1 but loses
/// to the fused hand-written elimination on tiny systems.

inline constexpr int kPanel = 24;  // blocked-path panel width
inline constexpr int kBlockedThreshold = 48;  // use blocked path for n >= this

/// Factor A = P * L * U in place (LAPACK dgetrf semantics: L unit-lower,
/// U upper, pivots[k] = row swapped with row k at step k).
/// Throws NumericalError if U has a zero diagonal entry.
void lu_factor(MatrixView a, std::span<int> pivots);

/// Unblocked right-looking factorisation (internal building block of
/// lu_factor's panel step; exposed for testing and for the solver study).
void lu_factor_unblocked(MatrixView a, std::span<int> pivots);

/// Solve A x = b given the factorisation from lu_factor (dgetrs semantics);
/// b is overwritten with x.
void lu_solve_factored(ConstMatrixView lu, std::span<const int> pivots,
                       std::span<double> b);

/// Convenience dgesv equivalent: factor + solve. Destroys A and b; b holds
/// the solution on return.
void lapack_style_solve(MatrixView a, std::span<double> b,
                        std::span<int> pivots);

}  // namespace unsnap::linalg
