#include "linalg/solver.hpp"

#include "linalg/gauss_elim.hpp"
#include "linalg/lu.hpp"
#include "util/assert.hpp"

namespace unsnap::linalg {

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::GaussianElimination: return "ge";
    case SolverKind::GaussianEliminationNoPivot: return "ge-nopivot";
    case SolverKind::LapackLu: return "lu";
  }
  UNSNAP_ASSERT(false);
  return {};
}

SolverKind solver_from_string(const std::string& name) {
  if (name == "ge") return SolverKind::GaussianElimination;
  if (name == "ge-nopivot") return SolverKind::GaussianEliminationNoPivot;
  if (name == "lu" || name == "lapack" || name == "mkl")
    return SolverKind::LapackLu;
  throw InvalidInput("unknown solver '" + name +
                     "' (expected ge, ge-nopivot or lu)");
}

void solve_in_place(SolverKind kind, MatrixView a, std::span<double> b,
                    SolveWorkspace& workspace) {
  switch (kind) {
    case SolverKind::GaussianElimination:
      gauss_solve(a, b);
      return;
    case SolverKind::GaussianEliminationNoPivot:
      gauss_solve_nopivot(a, b);
      return;
    case SolverKind::LapackLu:
      lapack_style_solve(a, b, workspace.pivots(a.rows()));
      return;
  }
  UNSNAP_ASSERT(false);
}

}  // namespace unsnap::linalg
