#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "linalg/blas_like.hpp"
#include "util/assert.hpp"

namespace unsnap::linalg {

namespace {

// Swap full rows i and j of the matrix (used when applying panel pivots to
// the columns outside the panel).
void swap_row_range(MatrixView a, int i, int j, int c0, int c1) {
  if (i == j) return;
  double* ri = a.row(i);
  double* rj = a.row(j);
  std::swap_ranges(ri + c0, ri + c1, rj + c0);
}

[[noreturn]] void zero_pivot(int k) {
  throw NumericalError("lu_factor: zero pivot at column " + std::to_string(k));
}

// Right-looking unblocked LU over the rectangular panel rows x cols.
// Pivot search runs over the full row range; pivots are recorded relative to
// the panel's first row.
void factor_panel(MatrixView panel, std::span<int> pivots) {
  const int m = panel.rows();
  const int n = panel.cols();
  const int steps = std::min(m, n);
  for (int k = 0; k < steps; ++k) {
    int piv = k;
    double best = std::fabs(panel(k, k));
    for (int i = k + 1; i < m; ++i) {
      const double v = std::fabs(panel(i, k));
      if (v > best) best = v, piv = i;
    }
    pivots[k] = piv;
    if (piv != k) swap_row_range(panel, k, piv, 0, n);
    const double diag = panel(k, k);
    if (diag == 0.0 || !std::isfinite(diag)) zero_pivot(k);
    const double inv = 1.0 / diag;
    for (int i = k + 1; i < m; ++i) panel(i, k) *= inv;
    if (k + 1 < n) {
      // A22 -= l21 * u12 (rank-1 update).
      ger_subtract(&panel(k + 1, k), panel.row_stride(), &panel(k, k + 1),
                   m - k - 1, n - k - 1,
                   panel.block(k + 1, k + 1, m - k - 1, n - k - 1));
    }
  }
}

}  // namespace

void lu_factor_unblocked(MatrixView a, std::span<int> pivots) {
  UNSNAP_ASSERT(a.rows() == a.cols());
  UNSNAP_ASSERT(static_cast<int>(pivots.size()) >= a.rows());
  factor_panel(a, pivots);
}

void lu_factor(MatrixView a, std::span<int> pivots) {
  const int n = a.rows();
  UNSNAP_ASSERT(a.cols() == n);
  UNSNAP_ASSERT(static_cast<int>(pivots.size()) >= n);

  if (n < kBlockedThreshold) {
    factor_panel(a, pivots);
    return;
  }

  for (int k0 = 0; k0 < n; k0 += kPanel) {
    const int nb = std::min(kPanel, n - k0);
    // Factor the current panel (all rows below and including the diagonal
    // block, nb columns wide).
    factor_panel(a.block(k0, k0, n - k0, nb),
                 pivots.subspan(k0, static_cast<std::size_t>(nb)));
    // Panel pivots are relative to row k0; rebase and apply the swaps to
    // the columns left and right of the panel.
    for (int k = k0; k < k0 + nb; ++k) {
      pivots[k] += k0;
      if (pivots[k] != k) {
        swap_row_range(a, k, pivots[k], 0, k0);
        swap_row_range(a, k, pivots[k], k0 + nb, n);
      }
    }
    const int rest = n - k0 - nb;
    if (rest > 0) {
      // U12 = L11^{-1} A12, then trailing update A22 -= L21 U12.
      trsm_lower_unit(a.block(k0, k0, nb, nb), a.block(k0, k0 + nb, nb, rest));
      gemm_subtract(a.block(k0 + nb, k0, rest, nb),
                    a.block(k0, k0 + nb, nb, rest),
                    a.block(k0 + nb, k0 + nb, rest, rest));
    }
  }
}

void lu_solve_factored(ConstMatrixView lu, std::span<const int> pivots,
                       std::span<double> b) {
  const int n = lu.rows();
  UNSNAP_ASSERT(lu.cols() == n && static_cast<int>(b.size()) == n);

  // Apply row interchanges to b.
  for (int k = 0; k < n; ++k)
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);

  // Forward substitution with unit-lower L.
  for (int i = 1; i < n; ++i) {
    const double* ri = lu.row(i);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = 0; j < i; ++j) acc += ri[j] * b[j];
    b[i] -= acc;
  }

  // Back substitution with U.
  for (int i = n - 1; i >= 0; --i) {
    const double* ri = lu.row(i);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = i + 1; j < n; ++j) acc += ri[j] * b[j];
    const double diag = ri[i];
    if (diag == 0.0) zero_pivot(i);
    b[i] = (b[i] - acc) / diag;
  }
}

void lapack_style_solve(MatrixView a, std::span<double> b,
                        std::span<int> pivots) {
  lu_factor(a, pivots);
  lu_solve_factored(a, pivots, b);
}

}  // namespace unsnap::linalg
