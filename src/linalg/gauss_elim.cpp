#include "linalg/gauss_elim.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace unsnap::linalg {

namespace {

// Shared elimination core; Pivot selects the pivot row for column k.
template <bool kPivot>
void eliminate(MatrixView a, std::span<double> b) {
  const int n = a.rows();
  UNSNAP_ASSERT(a.cols() == n && static_cast<int>(b.size()) == n);

  for (int k = 0; k < n; ++k) {
    if constexpr (kPivot) {
      int piv = k;
      double best = std::fabs(a(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double v = std::fabs(a(i, k));
        if (v > best) best = v, piv = i;
      }
      if (piv != k) {
        double* rk = a.row(k);
        double* rp = a.row(piv);
        std::swap_ranges(rk + k, rk + n, rp + k);
        std::swap(b[k], b[piv]);
      }
    }
    const double diag = a(k, k);
    if (diag == 0.0 || !std::isfinite(diag))
      throw NumericalError("gauss_solve: zero pivot at column " +
                           std::to_string(k));
    const double inv = 1.0 / diag;
    const double* rk = a.row(k);
    const double bk = b[k];
    for (int i = k + 1; i < n; ++i) {
      double* ri = a.row(i);
      const double factor = ri[k] * inv;
      if (factor == 0.0) continue;
#pragma omp simd
      for (int j = k + 1; j < n; ++j) ri[j] -= factor * rk[j];
      b[i] -= factor * bk;
    }
  }

  // Back substitution; b becomes x.
  for (int i = n - 1; i >= 0; --i) {
    const double* ri = a.row(i);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = i + 1; j < n; ++j) acc += ri[j] * b[j];
    b[i] = (b[i] - acc) / ri[i];
  }
}

}  // namespace

void gauss_solve(MatrixView a, std::span<double> b) {
  eliminate<true>(a, b);
}

void gauss_solve_nopivot(MatrixView a, std::span<double> b) {
  eliminate<false>(a, b);
}

}  // namespace unsnap::linalg
