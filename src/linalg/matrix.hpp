#pragma once

#include <cstddef>
#include <span>

#include "util/aligned.hpp"
#include "util/assert.hpp"

namespace unsnap::linalg {

/// Non-owning view of a dense row-major matrix. Row-major (C layout) is
/// used throughout UnSNAP: the assembly kernel writes matrix rows
/// contiguously while vectorising over the column (trial node) index.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, int rows, int cols, int row_stride)
      : data_(data), rows_(rows), cols_(cols), ld_(row_stride) {
    UNSNAP_ASSERT(row_stride >= cols);
  }
  MatrixView(double* data, int rows, int cols)
      : MatrixView(data, rows, cols, cols) {}

  [[nodiscard]] double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int row_stride() const { return ld_; }
  [[nodiscard]] double* data() const { return data_; }
  [[nodiscard]] double* row(int i) const {
    return data_ + static_cast<std::size_t>(i) * ld_;
  }

  /// Sub-view rows [r0, r0+nr) x cols [c0, c0+nc), sharing storage.
  [[nodiscard]] MatrixView block(int r0, int c0, int nr, int nc) const {
    UNSNAP_ASSERT(r0 + nr <= rows_ && c0 + nc <= cols_);
    return {data_ + static_cast<std::size_t>(r0) * ld_ + c0, nr, nc, ld_};
  }

 private:
  double* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

/// Read-only counterpart of MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, int rows, int cols, int row_stride)
      : data_(data), rows_(rows), cols_(cols), ld_(row_stride) {}
  ConstMatrixView(const double* data, int rows, int cols)
      : ConstMatrixView(data, rows, cols, cols) {}
  ConstMatrixView(MatrixView m)  // NOLINT: implicit view conversion intended
      : ConstMatrixView(m.data(), m.rows(), m.cols(), m.row_stride()) {}

  [[nodiscard]] const double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int row_stride() const { return ld_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] const double* row(int i) const {
    return data_ + static_cast<std::size_t>(i) * ld_;
  }

 private:
  const double* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

/// Owning dense row-major matrix with SIMD-aligned storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {}

  [[nodiscard]] double& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] const double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] MatrixView view() { return {data_.data(), rows_, cols_}; }
  [[nodiscard]] ConstMatrixView view() const {
    return {data_.data(), rows_, cols_};
  }
  void fill(double value) { data_.assign(data_.size(), value); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  AlignedVector<double> data_;
};

/// Frobenius-style max-abs difference, used by tests and solver checks.
double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

/// y = A x (row-major matvec); spans must match A's shape.
void matvec(ConstMatrixView a, std::span<const double> x, std::span<double> y);

/// C += A * B for row-major matrices (naive ikj kernel; the blocked LU
/// uses the tiled version in blas_like.hpp for its trailing update).
void matmul_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c);

}  // namespace unsnap::linalg
