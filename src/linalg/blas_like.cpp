#include "linalg/blas_like.hpp"

#include <algorithm>
#include <cmath>

namespace unsnap::linalg {

void gemm_subtract(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  UNSNAP_ASSERT(a.cols() == b.rows());
  UNSNAP_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  // Cache tiles sized so one A tile + one B tile + one C tile fit in L1.
  constexpr int kTileM = 32, kTileK = 64, kTileN = 64;
  for (int i0 = 0; i0 < m; i0 += kTileM) {
    const int im = std::min(i0 + kTileM, m);
    for (int k0 = 0; k0 < kk; k0 += kTileK) {
      const int km = std::min(k0 + kTileK, kk);
      for (int j0 = 0; j0 < n; j0 += kTileN) {
        const int jm = std::min(j0 + kTileN, n);
        for (int i = i0; i < im; ++i) {
          double* crow = c.row(i);
          for (int k = k0; k < km; ++k) {
            const double aik = a(i, k);
            const double* brow = b.row(k);
#pragma omp simd
            for (int j = j0; j < jm; ++j) crow[j] -= aik * brow[j];
          }
        }
      }
    }
  }
}

void trsm_lower_unit(ConstMatrixView l, MatrixView b) {
  UNSNAP_ASSERT(l.rows() == l.cols() && l.rows() == b.rows());
  const int m = l.rows(), n = b.cols();
  for (int i = 1; i < m; ++i) {
    double* bi = b.row(i);
    for (int k = 0; k < i; ++k) {
      const double lik = l(i, k);
      if (lik == 0.0) continue;
      const double* bk = b.row(k);
#pragma omp simd
      for (int j = 0; j < n; ++j) bi[j] -= lik * bk[j];
    }
  }
}

void ger_subtract(const double* col, int col_stride, const double* row, int m,
                  int n, MatrixView a) {
  for (int i = 0; i < m; ++i) {
    const double ci = col[static_cast<std::size_t>(i) * col_stride];
    if (ci == 0.0) continue;
    double* arow = a.row(i);
#pragma omp simd
    for (int j = 0; j < n; ++j) arow[j] -= ci * row[j];
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  UNSNAP_ASSERT(x.size() == y.size());
  double sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(std::span<const double> x) {
  double sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * x[i];
  return std::sqrt(sum);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  UNSNAP_ASSERT(x.size() == y.size());
#pragma omp simd
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
#pragma omp simd
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= alpha;
}

}  // namespace unsnap::linalg
