#include "linalg/matrix.hpp"

#include <cmath>

namespace unsnap::linalg {

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  UNSNAP_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

void matvec(ConstMatrixView a, std::span<const double> x,
            std::span<double> y) {
  UNSNAP_ASSERT(static_cast<int>(x.size()) == a.cols());
  UNSNAP_ASSERT(static_cast<int>(y.size()) == a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (int j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void matmul_accumulate(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  UNSNAP_ASSERT(a.cols() == b.rows());
  UNSNAP_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    double* crow = c.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      const double* brow = b.row(k);
#pragma omp simd
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace unsnap::linalg
