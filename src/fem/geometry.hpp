#pragma once

#include <array>

#include "fem/hex_element.hpp"

namespace unsnap::fem {

using Vec3 = std::array<double, 3>;

[[nodiscard]] inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}
[[nodiscard]] inline double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

/// 3x3 Jacobian data at a point of the trilinear hex mapping.
struct Jacobian {
  std::array<std::array<double, 3>, 3> j;     // j[r][c] = dX_r / dxi_c
  std::array<std::array<double, 3>, 3> inv_t;  // inverse transpose
  double det;
};

/// Trilinear geometry of one hex element, defined by its 8 corner vertices
/// (corner c = i + 2j + 4k over the +-1 reference corners). The mesh
/// twist deforms elements, so Jacobians and face normals genuinely vary
/// over each element and are evaluated per quadrature point.
class HexGeometry {
 public:
  explicit HexGeometry(const std::array<Vec3, 8>& corners)
      : corners_(corners) {}

  /// Geometric (trilinear) shape function values at xi, corner-ordered.
  static void shape(const Vec3& xi, std::array<double, 8>& n);
  /// Reference-space gradients of the geometric shape functions.
  static void shape_grad(const Vec3& xi, std::array<std::array<double, 3>, 8>& dn);

  /// Physical position of reference point xi.
  [[nodiscard]] Vec3 map(const Vec3& xi) const;

  /// Jacobian, determinant and inverse transpose at xi. Throws
  /// NumericalError if the element is inverted (det <= 0).
  [[nodiscard]] Jacobian jacobian(const Vec3& xi) const;

  /// Area-weighted outward normal (n * dS per unit reference face area) of
  /// face f at in-face coordinates (u, v). Integrating this over the
  /// reference face with the 2-D quadrature weights yields the exact
  /// directed area of the (possibly curved) face.
  [[nodiscard]] Vec3 face_normal_ds(int f, double u, double v) const;

  [[nodiscard]] const std::array<Vec3, 8>& corners() const { return corners_; }

  /// Physical centroid (image of the reference origin).
  [[nodiscard]] Vec3 centroid() const { return map({0.0, 0.0, 0.0}); }

 private:
  std::array<Vec3, 8> corners_;
};

}  // namespace unsnap::fem
