#pragma once

#include <vector>

namespace unsnap::fem {

/// One-dimensional Lagrange basis of arbitrary order p on [-1, 1] with
/// equispaced nodes (the classical Lagrange finite elements the paper uses;
/// order-p tensor products of these give the (p+1)^3-node hex elements of
/// Table I). Evaluation uses the barycentric form for numerical stability
/// at higher orders.
class LagrangeBasis1D {
 public:
  explicit LagrangeBasis1D(int order);

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] int num_nodes() const { return order_ + 1; }
  [[nodiscard]] const std::vector<double>& nodes() const { return nodes_; }

  /// Value of every basis function at x; out must hold num_nodes() values.
  void eval(double x, double* out) const;

  /// Derivative of every basis function at x.
  void eval_deriv(double x, double* out) const;

 private:
  int order_;
  std::vector<double> nodes_;
  std::vector<double> bary_;  // barycentric weights
};

}  // namespace unsnap::fem
