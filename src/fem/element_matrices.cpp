#include "fem/element_matrices.hpp"

#include <cmath>
#include <vector>

namespace unsnap::fem {

LocalMatrices compute_local_matrices(const HexReferenceElement& ref,
                                     const HexGeometry& geom) {
  const int n = ref.num_nodes();
  const int nf = ref.nodes_per_face();
  LocalMatrices out;
  out.mass = linalg::Matrix(n, n);
  for (auto& g : out.grad) g = linalg::Matrix(n, n);

  // Volume integrals: loop quadrature points once, accumulating mass and
  // the three directional gradient matrices. Physical gradients are
  // J^{-T} * reference gradients.
  std::vector<double> gphys(static_cast<std::size_t>(n) * 3);
  for (int q = 0; q < ref.num_qp(); ++q) {
    const Jacobian jac = geom.jacobian(ref.qp_coord(q));
    const double w = ref.qp_weight(q) * jac.det;
    out.volume += w;
    for (int i = 0; i < n; ++i) {
      for (int d = 0; d < 3; ++d) {
        double g = 0.0;
        for (int c = 0; c < 3; ++c)
          g += jac.inv_t[d][c] * ref.basis_grad(q, i, c);
        gphys[static_cast<std::size_t>(i) * 3 + d] = g;
      }
    }
    for (int i = 0; i < n; ++i) {
      const double vi = ref.basis_value(q, i);
      const double* gi = &gphys[static_cast<std::size_t>(i) * 3];
      for (int j = 0; j < n; ++j) {
        const double vj = ref.basis_value(q, j);
        out.mass(i, j) += w * vi * vj;
        out.grad[0](i, j) += w * gi[0] * vj;
        out.grad[1](i, j) += w * gi[1] * vj;
        out.grad[2](i, j) += w * gi[2] * vj;
      }
    }
  }

  // Face integrals in face-local indexing (row = my test node on the face,
  // column = trial node on the face). The trace bases are tabulated once
  // for all faces; geometry enters through the area-weighted normal.
  for (int f = 0; f < kFacesPerHex; ++f) {
    for (auto& m : out.face[f]) m = linalg::Matrix(nf, nf);
    Vec3 area_normal{0, 0, 0};
    double area = 0.0;
    for (int fq = 0; fq < ref.num_face_qp(); ++fq) {
      const auto [u, v] = ref.face_qp_uv(fq);
      const Vec3 nds = geom.face_normal_ds(f, u, v);
      const double w = ref.face_qp_weight(fq);
      area += w * std::sqrt(dot(nds, nds));
      for (int d = 0; d < 3; ++d) area_normal[d] += w * nds[d];
      for (int i = 0; i < nf; ++i) {
        const double vi = ref.face_basis_value(fq, i);
        if (vi == 0.0) continue;
        for (int j = 0; j < nf; ++j) {
          const double vij = w * vi * ref.face_basis_value(fq, j);
          out.face[f][0](i, j) += vij * nds[0];
          out.face[f][1](i, j) += vij * nds[1];
          out.face[f][2](i, j) += vij * nds[2];
        }
      }
    }
    out.face_area_normal[f] = area_normal;
    out.face_area[f] = area;
  }
  return out;
}

std::size_t local_matrices_doubles(const HexReferenceElement& ref) {
  const auto n = static_cast<std::size_t>(ref.num_nodes());
  const auto nf = static_cast<std::size_t>(ref.nodes_per_face());
  return 4 * n * n + kFacesPerHex * 3 * nf * nf;
}

}  // namespace unsnap::fem
