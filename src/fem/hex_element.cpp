#include "fem/hex_element.hpp"

#include "util/assert.hpp"

namespace unsnap::fem {

std::array<int, 2> face_axes(int f) {
  switch (face_axis(f)) {
    case 0: return {1, 2};  // +-x faces: (u,v) = (y,z)
    case 1: return {0, 2};  // +-y faces: (u,v) = (x,z)
    default: return {0, 1};  // +-z faces: (u,v) = (x,y)
  }
}

HexReferenceElement::HexReferenceElement(int order, int quad_points_per_dim)
    : order_(order),
      num_nodes_((order + 1) * (order + 1) * (order + 1)),
      nodes_per_face_((order + 1) * (order + 1)),
      basis1d_(order),
      rule1d_(gauss_legendre(quad_points_per_dim > 0 ? quad_points_per_dim
                                                     : order + 2)) {
  const int n1 = order_ + 1;
  const int nq1 = rule1d_.size();
  num_qp_ = nq1 * nq1 * nq1;
  num_face_qp_ = nq1 * nq1;

  // Corner node ids, c = i + 2j + 4k over {0, p}.
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 2; ++i)
        corner_nodes_[i + 2 * j + 4 * k] =
            node_id(i * order_, j * order_, k * order_);

  // Face node lists, u fastest within the face.
  for (int f = 0; f < kFacesPerHex; ++f) {
    const auto [ua, va] = face_axes(f);
    const int fixed_axis = face_axis(f);
    const int fixed_idx = face_side(f) == 0 ? 0 : order_;
    auto& nodes = face_nodes_[f];
    nodes.resize(static_cast<std::size_t>(nodes_per_face_));
    for (int v = 0; v < n1; ++v) {
      for (int u = 0; u < n1; ++u) {
        std::array<int, 3> ijk{};
        ijk[fixed_axis] = fixed_idx;
        ijk[ua] = u;
        ijk[va] = v;
        nodes[static_cast<std::size_t>(u + n1 * v)] =
            node_id(ijk[0], ijk[1], ijk[2]);
      }
    }
  }

  // Volume quadrature tensor product, x fastest: q = qx + nq*(qy + nq*qz).
  qp_weight_.resize(static_cast<std::size_t>(num_qp_));
  basis_val_.resize({static_cast<std::size_t>(num_qp_),
                     static_cast<std::size_t>(num_nodes_)});
  basis_grad_.resize({static_cast<std::size_t>(num_qp_),
                      static_cast<std::size_t>(num_nodes_), 3});

  std::vector<double> vx(n1), vy(n1), vz(n1), dx(n1), dy(n1), dz(n1);
  for (int qz = 0; qz < nq1; ++qz) {
    basis1d_.eval(rule1d_.points[qz], vz.data());
    basis1d_.eval_deriv(rule1d_.points[qz], dz.data());
    for (int qy = 0; qy < nq1; ++qy) {
      basis1d_.eval(rule1d_.points[qy], vy.data());
      basis1d_.eval_deriv(rule1d_.points[qy], dy.data());
      for (int qx = 0; qx < nq1; ++qx) {
        basis1d_.eval(rule1d_.points[qx], vx.data());
        basis1d_.eval_deriv(rule1d_.points[qx], dx.data());
        const int q = qx + nq1 * (qy + nq1 * qz);
        qp_weight_[q] = rule1d_.weights[qx] * rule1d_.weights[qy] *
                        rule1d_.weights[qz];
        for (int k = 0; k < n1; ++k)
          for (int j = 0; j < n1; ++j)
            for (int i = 0; i < n1; ++i) {
              const int node = node_id(i, j, k);
              basis_val_(q, node) = vx[i] * vy[j] * vz[k];
              basis_grad_(q, node, 0) = dx[i] * vy[j] * vz[k];
              basis_grad_(q, node, 1) = vx[i] * dy[j] * vz[k];
              basis_grad_(q, node, 2) = vx[i] * vy[j] * dz[k];
            }
      }
    }
  }

  // Face quadrature (2-D tensor, u fastest) and trace basis table. The
  // trace of the face-local node (iu, iv) at face point (u, v) is the
  // product of the two 1-D bases — identical for every face because the
  // face node lists follow the same (u, v) ordering.
  face_qp_weight_.resize(static_cast<std::size_t>(num_face_qp_));
  face_basis_val_.resize({static_cast<std::size_t>(num_face_qp_),
                          static_cast<std::size_t>(nodes_per_face_)});
  std::vector<double> vu(n1), vv(n1);
  for (int qv = 0; qv < nq1; ++qv) {
    basis1d_.eval(rule1d_.points[qv], vv.data());
    for (int qu = 0; qu < nq1; ++qu) {
      basis1d_.eval(rule1d_.points[qu], vu.data());
      const int fq = qu + nq1 * qv;
      face_qp_weight_[fq] = rule1d_.weights[qu] * rule1d_.weights[qv];
      for (int iv = 0; iv < n1; ++iv)
        for (int iu = 0; iu < n1; ++iu)
          face_basis_val_(fq, iu + n1 * iv) = vu[iu] * vv[iv];
    }
  }
}

int HexReferenceElement::node_id(int i, int j, int k) const {
  const int n1 = order_ + 1;
  UNSNAP_ASSERT(i >= 0 && i < n1 && j >= 0 && j < n1 && k >= 0 && k < n1);
  return i + n1 * (j + n1 * k);
}

std::array<int, 3> HexReferenceElement::node_ijk(int node) const {
  const int n1 = order_ + 1;
  return {node % n1, (node / n1) % n1, node / (n1 * n1)};
}

std::array<double, 3> HexReferenceElement::node_coord(int node) const {
  const auto [i, j, k] = node_ijk(node);
  const auto& x = basis1d_.nodes();
  return {x[i], x[j], x[k]};
}

std::array<double, 3> HexReferenceElement::qp_coord(int q) const {
  const int nq1 = rule1d_.size();
  const int qx = q % nq1, qy = (q / nq1) % nq1, qz = q / (nq1 * nq1);
  return {rule1d_.points[qx], rule1d_.points[qy], rule1d_.points[qz]};
}

std::array<double, 2> HexReferenceElement::face_qp_uv(int fq) const {
  const int nq1 = rule1d_.size();
  return {rule1d_.points[fq % nq1], rule1d_.points[fq / nq1]};
}

std::array<double, 3> HexReferenceElement::face_qp_coord(int f, int fq) const {
  const auto [u, v] = face_qp_uv(fq);
  const auto [ua, va] = face_axes(f);
  std::array<double, 3> xi{};
  xi[face_axis(f)] = face_side(f) == 0 ? -1.0 : 1.0;
  xi[ua] = u;
  xi[va] = v;
  return xi;
}

void HexReferenceElement::eval_basis(const std::array<double, 3>& xi,
                                     double* out) const {
  const int n1 = order_ + 1;
  std::vector<double> vx(n1), vy(n1), vz(n1);
  basis1d_.eval(xi[0], vx.data());
  basis1d_.eval(xi[1], vy.data());
  basis1d_.eval(xi[2], vz.data());
  for (int k = 0; k < n1; ++k)
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i)
        out[node_id(i, j, k)] = vx[i] * vy[j] * vz[k];
}

void HexReferenceElement::eval_basis_grad(const std::array<double, 3>& xi,
                                          double* out) const {
  const int n1 = order_ + 1;
  std::vector<double> vx(n1), vy(n1), vz(n1), dx(n1), dy(n1), dz(n1);
  basis1d_.eval(xi[0], vx.data());
  basis1d_.eval(xi[1], vy.data());
  basis1d_.eval(xi[2], vz.data());
  basis1d_.eval_deriv(xi[0], dx.data());
  basis1d_.eval_deriv(xi[1], dy.data());
  basis1d_.eval_deriv(xi[2], dz.data());
  for (int k = 0; k < n1; ++k)
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i) {
        double* g = out + 3 * node_id(i, j, k);
        g[0] = dx[i] * vy[j] * vz[k];
        g[1] = vx[i] * dy[j] * vz[k];
        g[2] = vx[i] * vy[j] * dz[k];
      }
}

}  // namespace unsnap::fem
