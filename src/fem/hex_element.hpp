#pragma once

#include <array>
#include <vector>

#include "fem/lagrange.hpp"
#include "fem/quadrature1d.hpp"
#include "util/ndarray.hpp"

namespace unsnap::fem {

/// Local face numbering shared across the mesh, sweep and assembly code:
/// 0:-x 1:+x 2:-y 3:+y 4:-z 5:+z. Opposite face flips the last bit.
inline constexpr int kFacesPerHex = 6;
[[nodiscard]] constexpr int opposite_face(int f) { return f ^ 1; }
[[nodiscard]] constexpr int face_axis(int f) { return f / 2; }
[[nodiscard]] constexpr int face_side(int f) { return f % 2; }  // 0:-, 1:+

/// Arbitrary-order Lagrange hexahedral reference element on [-1,1]^3 with
/// tensor-product equispaced nodes (paper Table I: order p has (p+1)^3
/// nodes). Tabulates basis values/gradients at the volume and face
/// quadrature points once so per-element integral computation is pure
/// table arithmetic.
class HexReferenceElement {
 public:
  /// quad_points_per_dim == 0 selects order + 2, which integrates every
  /// basis-pair product on a trilinearly-mapped (twisted) hex exactly —
  /// see DESIGN.md §5.
  explicit HexReferenceElement(int order, int quad_points_per_dim = 0);

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int nodes_per_face() const { return nodes_per_face_; }
  [[nodiscard]] int nodes_per_dim() const { return order_ + 1; }

  /// Lexicographic node numbering, x fastest: id = i + (p+1)*(j + (p+1)*k).
  [[nodiscard]] int node_id(int i, int j, int k) const;
  [[nodiscard]] std::array<int, 3> node_ijk(int node) const;
  [[nodiscard]] std::array<double, 3> node_coord(int node) const;

  /// Volume node ids of the 8 geometric corners, ordered c = i + 2j + 4k
  /// over the +-1 corner coordinates (matches mesh corner ordering).
  [[nodiscard]] const std::array<int, 8>& corner_nodes() const {
    return corner_nodes_;
  }

  /// Volume node ids lying on face f, ordered lexicographically by the
  /// in-face axes (u fastest). For +-x faces (u,v)=(y,z); +-y: (x,z);
  /// +-z: (x,y).
  [[nodiscard]] const std::vector<int>& face_nodes(int f) const {
    return face_nodes_[f];
  }

  // --- volume quadrature ---
  [[nodiscard]] int num_qp() const { return num_qp_; }
  [[nodiscard]] double qp_weight(int q) const { return qp_weight_[q]; }
  [[nodiscard]] std::array<double, 3> qp_coord(int q) const;
  /// phi_node evaluated at volume quadrature point q.
  [[nodiscard]] double basis_value(int q, int node) const {
    return basis_val_(q, node);
  }
  /// d phi_node / d xi_d at volume quadrature point q.
  [[nodiscard]] double basis_grad(int q, int node, int d) const {
    return basis_grad_(q, node, d);
  }

  // --- face quadrature (same 2-D tensor rule on every face) ---
  [[nodiscard]] int num_face_qp() const { return num_face_qp_; }
  [[nodiscard]] double face_qp_weight(int fq) const {
    return face_qp_weight_[fq];
  }
  /// Reference (u, v) in-face coordinates of face quadrature point fq.
  [[nodiscard]] std::array<double, 2> face_qp_uv(int fq) const;
  /// Full reference coordinates of face quadrature point fq on face f.
  [[nodiscard]] std::array<double, 3> face_qp_coord(int f, int fq) const;
  /// Trace basis: value of face-local node fl's basis at face point fq
  /// (identical for all faces thanks to the tensor construction, and the
  /// only nonzero traces on a face belong to its face nodes).
  [[nodiscard]] double face_basis_value(int fq, int fl) const {
    return face_basis_val_(fq, fl);
  }

  // --- general-point evaluation (setup, tests, post-processing) ---
  void eval_basis(const std::array<double, 3>& xi, double* out) const;
  /// out laid out [node][3].
  void eval_basis_grad(const std::array<double, 3>& xi, double* out) const;

  [[nodiscard]] const LagrangeBasis1D& basis1d() const { return basis1d_; }
  [[nodiscard]] const Quadrature1D& rule1d() const { return rule1d_; }

 private:
  int order_;
  int num_nodes_;
  int nodes_per_face_;
  int num_qp_;
  int num_face_qp_;
  LagrangeBasis1D basis1d_;
  Quadrature1D rule1d_;
  std::array<int, 8> corner_nodes_{};
  std::array<std::vector<int>, kFacesPerHex> face_nodes_;
  std::vector<double> qp_weight_;
  std::vector<double> face_qp_weight_;
  NDArray<double, 2> basis_val_;    // [qp][node]
  NDArray<double, 3> basis_grad_;   // [qp][node][3]
  NDArray<double, 2> face_basis_val_;  // [face_qp][face_local_node]
};

/// In-face axes (u, v) for face f, as global axis indices.
[[nodiscard]] std::array<int, 2> face_axes(int f);

}  // namespace unsnap::fem
