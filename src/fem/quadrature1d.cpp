#include "fem/quadrature1d.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace unsnap::fem {

Quadrature1D gauss_legendre(int n) {
  require(n >= 1, "gauss_legendre: need at least one point");
  Quadrature1D rule;
  rule.points.resize(n);
  rule.weights.resize(n);

  // Symmetric rule: compute the non-negative half and mirror.
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    // Chebyshev-like initial guess for the i-th root (descending order).
    double x = std::cos(std::numbers::pi * (i + 0.75) / (n + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = p2;
      }
      dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::fabs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.points[i] = -x;  // ascending order from the left endpoint
    rule.weights[i] = w;
    rule.points[n - 1 - i] = x;
    rule.weights[n - 1 - i] = w;
  }
  if (n % 2 == 1) rule.points[n / 2] = 0.0;  // exact centre for odd rules
  return rule;
}

}  // namespace unsnap::fem
