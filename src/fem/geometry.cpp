#include "fem/geometry.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace unsnap::fem {

void HexGeometry::shape(const Vec3& xi, std::array<double, 8>& n) {
  for (int c = 0; c < 8; ++c) {
    const double sx = (c & 1) ? 1.0 : -1.0;
    const double sy = (c & 2) ? 1.0 : -1.0;
    const double sz = (c & 4) ? 1.0 : -1.0;
    n[c] = 0.125 * (1.0 + sx * xi[0]) * (1.0 + sy * xi[1]) *
           (1.0 + sz * xi[2]);
  }
}

void HexGeometry::shape_grad(const Vec3& xi,
                             std::array<std::array<double, 3>, 8>& dn) {
  for (int c = 0; c < 8; ++c) {
    const double sx = (c & 1) ? 1.0 : -1.0;
    const double sy = (c & 2) ? 1.0 : -1.0;
    const double sz = (c & 4) ? 1.0 : -1.0;
    dn[c][0] = 0.125 * sx * (1.0 + sy * xi[1]) * (1.0 + sz * xi[2]);
    dn[c][1] = 0.125 * (1.0 + sx * xi[0]) * sy * (1.0 + sz * xi[2]);
    dn[c][2] = 0.125 * (1.0 + sx * xi[0]) * (1.0 + sy * xi[1]) * sz;
  }
}

Vec3 HexGeometry::map(const Vec3& xi) const {
  std::array<double, 8> n;
  shape(xi, n);
  Vec3 x{0.0, 0.0, 0.0};
  for (int c = 0; c < 8; ++c)
    for (int d = 0; d < 3; ++d) x[d] += n[c] * corners_[c][d];
  return x;
}

Jacobian HexGeometry::jacobian(const Vec3& xi) const {
  std::array<std::array<double, 3>, 8> dn;
  shape_grad(xi, dn);
  Jacobian out{};
  for (int c = 0; c < 8; ++c)
    for (int r = 0; r < 3; ++r)
      for (int d = 0; d < 3; ++d) out.j[r][d] += corners_[c][r] * dn[c][d];

  const auto& j = out.j;
  const double det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1]) -
                     j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0]) +
                     j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
  if (!(det > 0.0))
    throw NumericalError("HexGeometry: non-positive Jacobian determinant " +
                         std::to_string(det));
  out.det = det;

  // Cofactor / det gives the inverse; transpose of the inverse stored
  // directly as inv_t[r][c] = (J^{-1})[c][r].
  const double inv = 1.0 / det;
  std::array<std::array<double, 3>, 3> adj;
  adj[0][0] = j[1][1] * j[2][2] - j[1][2] * j[2][1];
  adj[0][1] = j[0][2] * j[2][1] - j[0][1] * j[2][2];
  adj[0][2] = j[0][1] * j[1][2] - j[0][2] * j[1][1];
  adj[1][0] = j[1][2] * j[2][0] - j[1][0] * j[2][2];
  adj[1][1] = j[0][0] * j[2][2] - j[0][2] * j[2][0];
  adj[1][2] = j[0][2] * j[1][0] - j[0][0] * j[1][2];
  adj[2][0] = j[1][0] * j[2][1] - j[1][1] * j[2][0];
  adj[2][1] = j[0][1] * j[2][0] - j[0][0] * j[2][1];
  adj[2][2] = j[0][0] * j[1][1] - j[0][1] * j[1][0];
  // adj is the inverse*det with adj[r][c] = (J^{-1})[r][c]*det; inv_t is its
  // transpose scaled by 1/det.
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) out.inv_t[r][c] = adj[c][r] * inv;
  return out;
}

Vec3 HexGeometry::face_normal_ds(int f, double u, double v) const {
  const auto [ua, va] = face_axes(f);
  Vec3 xi{};
  xi[face_axis(f)] = face_side(f) == 0 ? -1.0 : 1.0;
  xi[ua] = u;
  xi[va] = v;

  std::array<std::array<double, 3>, 8> dn;
  shape_grad(xi, dn);
  Vec3 tu{0, 0, 0}, tv{0, 0, 0};
  for (int c = 0; c < 8; ++c)
    for (int d = 0; d < 3; ++d) {
      tu[d] += corners_[c][d] * dn[c][ua];
      tv[d] += corners_[c][d] * dn[c][va];
    }
  Vec3 n = cross(tu, tv);
  // Orientation so n points outward; derived from the identity mapping
  // (see the face-axis table in hex_element.cpp).
  static constexpr double kSign[kFacesPerHex] = {-1.0, 1.0, 1.0,
                                                 -1.0, -1.0, 1.0};
  for (double& c : n) c *= kSign[f];
  return n;
}

}  // namespace unsnap::fem
