#include "fem/lagrange.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace unsnap::fem {

LagrangeBasis1D::LagrangeBasis1D(int order) : order_(order) {
  require(order >= 1, "LagrangeBasis1D: order must be >= 1");
  require(order <= 16, "LagrangeBasis1D: order > 16 is numerically fragile");
  const int n = order + 1;
  nodes_.resize(n);
  bary_.resize(n);
  for (int i = 0; i < n; ++i)
    nodes_[i] = -1.0 + 2.0 * static_cast<double>(i) / order;

  for (int i = 0; i < n; ++i) {
    double w = 1.0;
    for (int j = 0; j < n; ++j)
      if (j != i) w *= nodes_[i] - nodes_[j];
    bary_[i] = 1.0 / w;
  }
}

void LagrangeBasis1D::eval(double x, double* out) const {
  const int n = num_nodes();
  // If x coincides with a node the barycentric form degenerates; handle
  // exactly (this happens for every tabulated node-at-node evaluation).
  for (int i = 0; i < n; ++i) {
    if (x == nodes_[i]) {
      for (int j = 0; j < n; ++j) out[j] = (i == j) ? 1.0 : 0.0;
      return;
    }
  }
  // l(x) * w_i / (x - x_i) with l(x) = prod (x - x_j).
  double l = 1.0;
  for (int j = 0; j < n; ++j) l *= x - nodes_[j];
  for (int i = 0; i < n; ++i) out[i] = l * bary_[i] / (x - nodes_[i]);
}

void LagrangeBasis1D::eval_deriv(double x, double* out) const {
  const int n = num_nodes();
  // Differentiate the product form directly: phi_i(x) = w_i prod_{j!=i}(x-x_j)
  // => phi_i'(x) = w_i sum_{k!=i} prod_{j!=i,k}(x - x_j).
  // O(n^2) per evaluation, used only when building the reference tables.
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int k = 0; k < n; ++k) {
      if (k == i) continue;
      double prod = 1.0;
      for (int j = 0; j < n; ++j) {
        if (j == i || j == k) continue;
        prod *= x - nodes_[j];
      }
      sum += prod;
    }
    out[i] = sum * bary_[i];
  }
}

}  // namespace unsnap::fem
