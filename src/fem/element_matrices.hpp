#pragma once

#include <array>

#include "fem/geometry.hpp"
#include "fem/hex_element.hpp"
#include "linalg/matrix.hpp"

namespace unsnap::fem {

/// The "precomputed integration of basis function pairs" the paper's kernel
/// streams from memory (§III-C): everything about one element that is
/// independent of angle and energy group. The directional split keeps the
/// face and gradient integrals angle-free; the assembly kernel contracts
/// them with the ordinate on the fly.
struct LocalMatrices {
  /// M_ij = Int phi_i phi_j dV (n x n).
  linalg::Matrix mass;
  /// G_d[i][j] = Int (d phi_i / d x_d) phi_j dV (3 matrices, n x n).
  std::array<linalg::Matrix, 3> grad;
  /// F_{f,d}[i][j] = Int_f n_d phi_i phi_j dS in face-local indexing
  /// (6 faces x 3 directions, nf x nf).
  std::array<std::array<linalg::Matrix, 3>, kFacesPerHex> face;
  /// Directed area of each face: Int_f n dS. Classifies faces as
  /// inflow/outflow per ordinate and drives the sweep dependency graph.
  std::array<Vec3, kFacesPerHex> face_area_normal;
  /// Int_f dS (scalar area), for diagnostics.
  std::array<double, kFacesPerHex> face_area;
  double volume = 0.0;
};

/// Integrate all basis-pair products over one (possibly twisted) element.
[[nodiscard]] LocalMatrices compute_local_matrices(
    const HexReferenceElement& ref, const HexGeometry& geom);

/// Number of FP64 values LocalMatrices stores per element; the benchmark
/// harness uses this for footprint reporting.
[[nodiscard]] std::size_t local_matrices_doubles(const HexReferenceElement& ref);

}  // namespace unsnap::fem
