#pragma once

#include <vector>

namespace unsnap::fem {

/// One-dimensional quadrature rule on [-1, 1].
struct Quadrature1D {
  std::vector<double> points;
  std::vector<double> weights;

  [[nodiscard]] int size() const { return static_cast<int>(points.size()); }
};

/// Gauss-Legendre rule with n points, exact for polynomials of degree
/// 2n - 1. Nodes are found by Newton iteration on the Legendre polynomial
/// from Chebyshev initial guesses; accurate to machine precision for the
/// orders used here (n <= ~64).
[[nodiscard]] Quadrature1D gauss_legendre(int n);

}  // namespace unsnap::fem
