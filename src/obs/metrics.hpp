#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace unsnap::obs {

/// Monotonic event count (requests served, sweeps executed). Lock-free
/// increments; readable while written.
class Counter {
 public:
  void inc(long delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] long value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<long> value_{0};
};

/// Point-in-time value (queue depth, threads in use, cache bytes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound bucket histogram (Prometheus cumulative-`le` semantics).
/// Bounds are set at registration and never change; observe() is two
/// relaxed atomic adds plus a CAS loop for the double sum, so it is safe
/// from any thread including sweep workers.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;       // upper bounds, ascending; +Inf implicit
    std::vector<long> cumulative;     // counts <= bounds[i]; last == count
    long count = 0;
    double sum = 0.0;
    /// Quantile estimate by linear interpolation inside the landing
    /// bucket (the same model promtool applies to `_bucket` series).
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Bucket presets shared by solver and daemon so dashboards line up.
  static std::vector<double> latency_bounds();     // 100µs .. ~100s
  static std::vector<double> frame_size_bounds();  // 64B .. 16MiB
  static std::vector<double> depth_bounds();       // 1 .. 1024

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long>> buckets_;  // one per bound, plus +Inf
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide named metric families with Prometheus text exposition.
/// Registration (first lookup of a name+labels) takes the registry mutex;
/// the returned references are stable for the process lifetime, so hot
/// paths cache them (`static auto& c = ...counter(...)`) and update
/// lock-free. Labels are pre-rendered strings (`op="ping"`), keeping the
/// registry dependency-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds,
                       const std::string& labels = "");

  /// Full registry in Prometheus text exposition format 0.0.4:
  /// `# HELP`/`# TYPE` headers, families sorted by name, label sets
  /// sorted within a family, histograms expanded to
  /// `_bucket{le=...}`/`_sum`/`_count`.
  [[nodiscard]] std::string prometheus_text() const;

  /// Series count as a scrape of prometheus_text() would see it (each
  /// labelled counter/gauge line and each histogram bucket/sum/count
  /// line is one series).
  [[nodiscard]] int series_count() const;

  /// Drop every family (tests only; references handed out before a reset
  /// dangle, so production code never calls this).
  void reset_for_test();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    // label string -> metric (one entry with "" for unlabelled families)
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;

  Family& family(const std::string& name, const std::string& help, Kind kind);
};

}  // namespace unsnap::obs
