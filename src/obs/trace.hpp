#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace unsnap::obs {

/// One closed span: a named [t0, t1) interval on one thread, with up to
/// two integer annotations (octant index, element count, ...). Names and
/// argument keys must be string literals (or otherwise outlive the
/// Tracer) — events store the pointers, never copies, so the hot path
/// does no allocation.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  // steady-clock ns since the trace epoch
  std::uint64_t t1_ns = 0;
  std::uint32_t tid = 0;  // small per-thread registration id (1-based)
  const char* arg_key[2] = {nullptr, nullptr};
  long arg_val[2] = {0, 0};
};

/// Low-overhead span collector: per-thread ring buffers behind one global
/// on/off flag. Disabled (the default), OBS_SPAN costs a single relaxed
/// atomic load — no clock read, no allocation — which is what keeps the
/// golden digests and sweep throughput bitwise/within-noise identical
/// whether the binary was built with tracing wired in or not (the paper's
/// warning about per-solve timers perturbing the measurement).
///
/// Enabled, each closing span pushes one TraceEvent into the calling
/// thread's fixed-capacity ring. A full ring drops the *oldest* event
/// (the trace keeps the most recent window) and counts the drop, so a
/// long run degrades to a bounded tail instead of unbounded memory.
///
/// Buffers register themselves on first use and live for the process
/// lifetime (one per thread that ever traced), so enable/disable/snapshot
/// may race with worker threads safely.
class Tracer {
 public:
  /// The process-wide collector (leaky singleton: never destroyed, so
  /// thread-exit destructors and late spans cannot touch a dead object).
  static Tracer& instance();

  /// Start collecting; (re)sizes every thread ring to `ring_capacity`
  /// events and clears previous contents + drop counters.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merged copy of every thread's ring, sorted by t0 (stable across
  /// calls; non-destructive so a RunRecord summary and a later file
  /// export see the same events).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Events evicted ring-wide since the last enable()/clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all buffered events and reset the drop counters (capacity and
  /// the enabled flag are untouched).
  void clear();

  /// Record a manually-timed span (cross-thread lifecycles like a serve
  /// job's queued interval, which begins on a handler thread and ends on
  /// a worker). Attributed to the calling thread unless `event.tid` is
  /// already set. No-op when disabled.
  void record(TraceEvent event);

  /// Steady-clock ns since the trace epoch (process start).
  [[nodiscard]] static std::uint64_t now_ns();
  /// Registration id of the calling thread (registers it on first use).
  [[nodiscard]] static std::uint32_t thread_id();

  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  struct ThreadBuffer;  // defined in trace.cpp (registry needs the type)

 private:
  Tracer() = default;
  friend class SpanGuard;

  [[nodiscard]] ThreadBuffer& local_buffer();
  void push(const TraceEvent& event);

  static inline std::atomic<bool> enabled_{false};
};

/// RAII span: opens on construction when tracing is enabled, pushes the
/// closed TraceEvent on destruction. The enabled test happens once, at
/// construction, so a disable() mid-span tears nothing. Use through
/// OBS_SPAN, which names the guard uniquely per line.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (Tracer::enabled()) open(name);
  }
  SpanGuard(const char* name, const char* key0, long val0) {
    if (Tracer::enabled()) {
      open(name);
      event_.arg_key[0] = key0;
      event_.arg_val[0] = val0;
    }
  }
  SpanGuard(const char* name, const char* key0, long val0, const char* key1,
            long val1) {
    if (Tracer::enabled()) {
      open(name);
      event_.arg_key[0] = key0;
      event_.arg_val[0] = val0;
      event_.arg_key[1] = key1;
      event_.arg_val[1] = val1;
    }
  }
  ~SpanGuard() {
    if (open_) close();
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  bool open_ = false;
  TraceEvent event_;

  void open(const char* name);
  void close();
};

/// Process-lifetime copy of `name`, for spans whose name is built at
/// runtime (TraceEvent stores pointers, and the ring buffers keep them
/// long after the caller's string is gone). Interned strings are never
/// freed; intended for a small, bounded set of names (timer labels),
/// not per-event payloads.
[[nodiscard]] const char* intern_name(const std::string& name);

#define UNSNAP_OBS_CONCAT_(a, b) a##b
#define UNSNAP_OBS_CONCAT(a, b) UNSNAP_OBS_CONCAT_(a, b)
/// OBS_SPAN("sweep.octant") or OBS_SPAN("sweep.octant", "oct", oct,
/// "elements", n): scoped span over the rest of the enclosing block.
#define OBS_SPAN(...)                                        \
  ::unsnap::obs::SpanGuard UNSNAP_OBS_CONCAT(obs_span_at_, \
                                             __LINE__)(__VA_ARGS__)

// --- export / aggregation --------------------------------------------------

/// Chrome-trace-event JSON ({"traceEvents": [...]}) of the events:
/// matched "B"/"E" pairs per thread (derived from the closed spans, which
/// nest properly per thread by RAII), microsecond timestamps, pid 1,
/// span args under "args". Loads directly in chrome://tracing and
/// Perfetto (ui.perfetto.dev).
[[nodiscard]] std::string to_chrome_trace(std::span<const TraceEvent> events);

/// Aggregate view of one trace, for the RunRecord observability block.
struct PhaseSummary {
  std::string name;
  long count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  // Exact quantiles over the phase's span durations (nearest-rank on the
  // sorted samples — these summarise the captured window, not a model).
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

struct TraceSummary {
  long events = 0;
  long dropped = 0;
  int threads = 0;  // distinct tids among the events
  std::vector<PhaseSummary> phases;  // sorted by name (deterministic)
};

[[nodiscard]] TraceSummary summarize(std::span<const TraceEvent> events,
                                     std::uint64_t dropped);

}  // namespace unsnap::obs
