#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "util/json.hpp"

namespace unsnap::obs {

// One ring per thread that ever traced. The owning thread appends through
// a thread_local shared_ptr without touching the global registry; the
// per-buffer mutex is only contended while a snapshot/clear walks the
// registry, so the hot path is an uncontended lock + vector store.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t capacity = Tracer::kDefaultRingCapacity;
  std::size_t head = 0;  // index of the oldest event when full
  std::size_t size = 0;
  std::uint64_t dropped = 0;

  void push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    if (capacity == 0) return;
    if (ring.size() < capacity) {
      ring.push_back(event);
      ++size;
      return;
    }
    // Full: overwrite the oldest slot (drop-oldest keeps the most recent
    // window of the run, which is the part a hung job's trace explains).
    ring[head] = event;
    head = (head + 1) % capacity;
    ++dropped;
  }
};

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Tracer::ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::size_t capacity = Tracer::kDefaultRingCapacity;
};

Registry& registry() {
  static Registry* reg = new Registry();  // leaky: outlives thread exits
  return *reg;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaky singleton
  (void)trace_epoch();                   // pin the epoch early
  return *tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

std::uint32_t Tracer::thread_id() {
  static thread_local std::uint32_t tid = [] {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.next_tid++;
  }();
  return tid;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  static thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    fresh->capacity = reg.capacity;
    reg.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void Tracer::push(const TraceEvent& event) { local_buffer().push(event); }

void Tracer::enable(std::size_t ring_capacity) {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.capacity = ring_capacity;
    for (auto& buffer : reg.buffers) {
      std::lock_guard<std::mutex> inner(buffer->mutex);
      buffer->ring.clear();
      buffer->capacity = ring_capacity;
      buffer->head = 0;
      buffer->size = 0;
      buffer->dropped = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> inner(buffer->mutex);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->size = 0;
    buffer->dropped = 0;
  }
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> inner(buffer->mutex);
    // Oldest-first: [head, end) then [0, head) when the ring has wrapped.
    const std::size_t n = buffer->ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      merged.push_back(buffer->ring[(buffer->head + i) % n]);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  return merged;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> inner(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  if (event.tid == 0) event.tid = thread_id();
  push(event);
}

const char* intern_name(const std::string& name) {
  // std::set nodes are stable: the returned c_str() survives later
  // insertions. Leaky for the same reason the Tracer is — events holding
  // these pointers may be exported after any particular caller is gone.
  static std::mutex* mutex = new std::mutex();
  static std::set<std::string>* pool = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(*mutex);
  return pool->insert(name).first->c_str();
}

void SpanGuard::open(const char* name) {
  event_.name = name;
  event_.tid = Tracer::thread_id();
  event_.t0_ns = Tracer::now_ns();
  open_ = true;
}

void SpanGuard::close() {
  event_.t1_ns = Tracer::now_ns();
  // A span that outlived a disable() is still recorded: its begin was
  // accepted, and dropping the end would leave the B/E export unbalanced.
  Tracer::instance().push(event_);
}

namespace {

void write_chrome_event(util::JsonWriter& w, const TraceEvent& e, char phase,
                        std::uint64_t ts_ns) {
  w.begin_object();
  w.kv("name", e.name != nullptr ? e.name : "?");
  w.kv("ph", std::string(1, phase));
  // Chrome trace timestamps are microseconds; keep sub-µs resolution as a
  // fractional part.
  w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
  w.kv("pid", 1);
  w.kv("tid", static_cast<long>(e.tid));
  if (phase == 'B' && e.arg_key[0] != nullptr) {
    w.key("args");
    w.begin_object();
    for (int i = 0; i < 2; ++i) {
      if (e.arg_key[i] != nullptr) w.kv(e.arg_key[i], e.arg_val[i]);
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string to_chrome_trace(std::span<const TraceEvent> events) {
  // Group by thread, then emit each thread's spans as properly nested
  // B/E pairs. RAII guarantees spans on one thread either nest or are
  // disjoint, so sorting by (t0 asc, t1 desc) and popping ended parents
  // reconstructs the begin/end interleaving exactly.
  std::map<std::uint32_t, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(e);

  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                       return a.t1_ns > b.t1_ns;
                     });
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent& e : spans) {
      while (!stack.empty() && stack.back()->t1_ns <= e.t0_ns) {
        write_chrome_event(w, *stack.back(), 'E', stack.back()->t1_ns);
        stack.pop_back();
      }
      write_chrome_event(w, e, 'B', e.t0_ns);
      stack.push_back(&e);
    }
    while (!stack.empty()) {
      write_chrome_event(w, *stack.back(), 'E', stack.back()->t1_ns);
      stack.pop_back();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

TraceSummary summarize(std::span<const TraceEvent> events,
                       std::uint64_t dropped) {
  TraceSummary summary;
  summary.events = static_cast<long>(events.size());
  summary.dropped = static_cast<long>(dropped);

  std::map<std::string, std::vector<double>> durations;
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) {
    const double seconds =
        static_cast<double>(e.t1_ns - e.t0_ns) * 1e-9;
    durations[e.name != nullptr ? e.name : "?"].push_back(seconds);
    tids.push_back(e.tid);
  }
  std::sort(tids.begin(), tids.end());
  summary.threads = static_cast<int>(
      std::unique(tids.begin(), tids.end()) - tids.begin());

  for (auto& [name, samples] : durations) {
    std::sort(samples.begin(), samples.end());
    PhaseSummary phase;
    phase.name = name;
    phase.count = static_cast<long>(samples.size());
    for (double s : samples) phase.total_seconds += s;
    phase.min_seconds = samples.front();
    phase.max_seconds = samples.back();
    phase.p50_seconds = nearest_rank(samples, 0.50);
    phase.p95_seconds = nearest_rank(samples, 0.95);
    phase.p99_seconds = nearest_rank(samples, 0.99);
    summary.phases.push_back(std::move(phase));
  }
  return summary;
}

}  // namespace unsnap::obs
