#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace unsnap::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  // Bounds must be ascending for lower_bound bucket selection.
  UNSNAP_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.cumulative.resize(buckets_.size());
  long running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snap.cumulative[i] = running;
  }
  snap.count = running;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (static_cast<double>(cumulative[i]) < target) continue;
    const long below = i == 0 ? 0 : cumulative[i - 1];
    const long in_bucket = cumulative[i] - below;
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // +Inf bucket: report its floor
    const double hi = bounds[i];
    if (in_bucket == 0) return hi;
    const double frac =
        (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> Histogram::latency_bounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
          25.0, 50.0,   100.0};
}

std::vector<double> Histogram::frame_size_bounds() {
  std::vector<double> bounds;
  for (double b = 64.0; b <= 16.0 * 1024.0 * 1024.0; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

std::vector<double> Histogram::depth_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaky singleton
  return *reg;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    UNSNAP_ASSERT(it->second.kind == kind);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kCounter);
  auto [it, inserted] = fam.counters.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kGauge);
  auto [it, inserted] = fam.gauges.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, help, Kind::kHistogram);
  auto [it, inserted] = fam.histograms.try_emplace(labels);
  if (inserted) it->second = std::make_unique<Histogram>(std::move(bounds));
  return *it->second;
}

namespace {

std::string render_number(double v) {
  // Prometheus accepts plain decimal/exponent floats; reuse the writer's
  // round-trippable rendering but map the JSON-only "null" to +Inf-safe 0.
  std::string s = util::JsonWriter::number(v);
  return s == "null" ? "0" : s;
}

std::string render_bound(double v) {
  // Bucket bounds are exact configured values, not measurements: %g keeps
  // the label readable (le="0.00025", not le="0.00025000000000000001").
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

std::string with_le(const std::string& labels, const std::string& le) {
  std::string merged = labels;
  if (!merged.empty()) merged += ',';
  merged += "le=\"" + le + "\"";
  return merged;
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    switch (fam.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, metric] : fam.counters) {
          append_series(out, name, labels, std::to_string(metric->value()));
        }
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, metric] : fam.gauges) {
          append_series(out, name, labels, render_number(metric->value()));
        }
        break;
      case Kind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, metric] : fam.histograms) {
          const Histogram::Snapshot snap = metric->snapshot();
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            append_series(out, name + "_bucket",
                          with_le(labels, render_bound(snap.bounds[i])),
                          std::to_string(snap.cumulative[i]));
          }
          append_series(out, name + "_bucket", with_le(labels, "+Inf"),
                        std::to_string(snap.count));
          append_series(out, name + "_sum", labels, render_number(snap.sum));
          append_series(out, name + "_count", labels,
                        std::to_string(snap.count));
        }
        break;
    }
  }
  return out;
}

int MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int series = 0;
  for (const auto& [name, fam] : families_) {
    series += static_cast<int>(fam.counters.size());
    series += static_cast<int>(fam.gauges.size());
    for (const auto& [labels, metric] : fam.histograms) {
      (void)labels;
      series +=
          static_cast<int>(metric->snapshot().bounds.size()) + 1 + 2;
    }
  }
  return series;
}

void MetricsRegistry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

}  // namespace unsnap::obs
