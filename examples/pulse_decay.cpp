// Time-dependent scenario: an initial particle pulse in a scattering box
// with vacuum boundaries decays by absorption and leakage. Demonstrates
// the backward-Euler time integrator (SNAP's optional time dimension) and
// prints the population history together with the per-step iteration
// counts — late steps converge faster because the previous step
// warm-starts the source iteration.

#include <cstdio>
#include <memory>

#include "api/problem_builder.hpp"
#include "api/scenario.hpp"
#include "core/time_dependent.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "6", "elements per dimension");
  cli.option("ng", "2", "energy groups");
  cli.option("nang", "4", "angles per octant");
  cli.option("dt", "0.25", "time step");
  cli.option("steps", "16", "number of steps");
  cli.option("c", "0.6", "scattering ratio");
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  // The time integrator consumes the lowered deck and builds its own
  // problem data, so lower via to_input() instead of materialising a
  // Problem whose data would go unused.
  const snap::Input input =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, nx}, .twist = 0.001, .shuffle_seed = 21})
          .angular({.nang = cli.get_int("nang")})
          .materials({.num_groups = cli.get_int("ng"),
                      .mat_opt = 0,
                      .scattering_ratio = cli.get_double("c")})
          .source({.src_opt = 0})
          .iteration({.epsi = 1e-7,
                      .iitm = 200,
                      .oitm = 10,
                      .fixed_iterations = false})
          .to_input();

  const auto disc = std::make_shared<const core::Discretization>(input);
  core::TimeDependentSolver td(
      disc, input, core::TimeDependentSolver::snap_velocities(input.ng),
      cli.get_double("dt"));
  td.solver().problem().qext.fill(0.0);  // pure decay, no driving source
  td.set_initial_condition(1.0);

  const double d0 = td.total_density();
  std::printf("Pulse decay: %d^3 box, %d groups, c = %.2f, dt = %.3g\n",
              nx, input.ng, cli.get_double("c"), td.dt());
  std::printf("\n  time    density     fraction   inners\n");
  std::printf("  %5.2f   %.4e   %7.4f\n", 0.0, d0, 1.0);
  double previous = d0;
  for (int n = 0; n < cli.get_int("steps"); ++n) {
    const auto result = td.step();
    std::printf("  %5.2f   %.4e   %7.4f   %d\n", result.time,
                result.total_density, result.total_density / d0,
                result.iteration.inners);
    if (result.total_density > previous)
      std::printf("  WARNING: density grew without a source!\n");
    previous = result.total_density;
  }
  std::printf(
      "\nReading: the population decays monotonically; the decay rate is\n"
      "bounded by absorption (sigma_a v) plus boundary leakage, and the\n"
      "iteration count per step falls as the solution relaxes.\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "pulse_decay",
    .summary = "decay of an initial pulse (time-dependent mode)",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
