// Criticality scenario: the k-eigenvalue companion of the fixed-source
// examples. A two-group fuel cube sits in a water bath; the multigroup
// library is built programmatically through xs::Library (the same model
// `[xs] file = ...` decks load from disk) and handed to xs::KeffSolver,
// which wraps the power iteration around downscatter-ordered groupset
// transport solves. The scenario runs the problem twice — once split into
// one groupset per group (the library is pure downscatter), once fused
// into a single two-group block — and checks the two paths agree on k,
// demonstrating that the groupset partition is a performance knob, not a
// physics one.
//
// The fuel is tuned so its infinite-medium eigenvalue is exactly 1
// (see decks/xs/criticality.xs for the closed form); the finite, leaky
// configuration lands well below that.

#include <cmath>
#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/scenario.hpp"
#include "util/assert.hpp"
#include "xs/keff.hpp"
#include "xs/library.hpp"

namespace {

using namespace unsnap;

/// The two-group fuel/water pair of decks/xs/criticality.xs, built
/// in memory: group 0 fast, group 1 thermal, pure downscatter.
xs::Library criticality_library() {
  xs::Library lib;
  lib.ng = 2;
  lib.velocity = {2.0, 1.0};

  xs::Material fuel;
  fuel.name = "fuel";
  fuel.sigt = {2.0, 3.2};
  fuel.nu_sigf = {0.48, 0.96};
  fuel.chi = {1.0, 0.0};
  fuel.sigs.resize({1, 2, 2}, 0.0);
  fuel.sigs(0, 0, 0) = 1.2;
  fuel.sigs(0, 0, 1) = 0.4;
  fuel.sigs(0, 1, 1) = 2.0;
  lib.materials.push_back(fuel);

  xs::Material water;
  water.name = "water";
  water.sigt = {2.4, 4.8};
  water.sigs.resize({1, 2, 2}, 0.0);
  water.sigs(0, 0, 0) = 1.8;
  water.sigs(0, 0, 1) = 0.56;
  water.sigs(0, 1, 1) = 4.2;
  lib.materials.push_back(water);

  lib.validate();
  return lib;
}

void declare_options(Cli& cli) {
  cli.option("nx", "6", "elements per axis");
  cli.option("nang", "2", "angles per octant");
  cli.option("k-tol", "1e-7", "|dk| convergence criterion");
  cli.option("fission-tol", "1e-6", "fission-source change criterion");
  cli.option("outers", "100", "power-iteration outer cap");
  cli.option("epsi", "1e-6", "per-groupset inner tolerance");
  cli.flag("extrapolate", "enable shifted fission-source extrapolation");
}

int run(const Cli& cli) {
  const xs::Library lib = criticality_library();

  api::ProblemBuilder builder;
  builder
      .mesh({.dims = {cli.get_int("nx"), cli.get_int("nx"),
                      cli.get_int("nx")},
             .extent = {4.0, 4.0, 4.0}})
      .angular({.nang = cli.get_int("nang")})
      .materials({.num_groups = lib.ng,
                  .cross_sections = lib.cross_sections(),
                  .material_map =
                      [](const fem::Vec3& c) {
                        const bool fuel = 0.5 < c[0] && c[0] < 3.5 &&
                                          0.5 < c[1] && c[1] < 3.5 &&
                                          0.5 < c[2] && c[2] < 3.5;
                        return fuel ? 0 : 1;
                      }})
      .iteration({.epsi = cli.get_double("epsi"),
                  .iitm = 20,
                  .oitm = 3,
                  .fixed_iterations = false});
  const api::Problem problem = builder.build();

  xs::KeffOptions options;
  options.k_tol = cli.get_double("k-tol");
  options.fission_tol = cli.get_double("fission-tol");
  options.max_outers = cli.get_int("outers");
  options.extrapolate = cli.get_flag("extrapolate");

  double k_split = 0.0;
  std::printf("criticality: %d^3 mesh, %d angles/octant, 2 groups\n\n",
              cli.get_int("nx"), cli.get_int("nang"));
  for (const bool fused : {false, true}) {
    xs::KeffOptions opt = options;
    if (fused) opt.groupsets = {{0, lib.ng - 1}};
    xs::KeffSolver solver(problem.discretization_ptr(), problem.input(),
                          problem.data(), opt);
    const xs::KeffResult result = solver.run();
    std::printf("%s groupsets (%d):\n", fused ? "fused" : "per-group",
                solver.num_groupsets());
    std::printf("  k = %.9f (%s after %d outers, dominance ratio %.3f)\n",
                result.k, result.converged ? "converged" : "NOT converged",
                result.outers, result.dominance_ratio);
    for (std::size_t s = 0; s < result.groupset_sweeps.size(); ++s)
      std::printf("  groupset %zu: %lld sweeps\n", s,
                  result.groupset_sweeps[s]);
    const core::BalanceReport balance = solver.balance();
    std::printf("  balance: fission/k %.6e = absorption %.6e + "
                "leakage %.6e (residual %.2e)\n\n",
                balance.fission, balance.absorption, balance.leakage,
                balance.residual());
    if (!fused) k_split = result.k;
    else {
      std::printf("split vs fused |dk| = %.3e\n",
                  std::abs(result.k - k_split));
      require(std::abs(result.k - k_split) < 1e-6,
              "criticality: groupset partition changed the eigenvalue");
    }
  }
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "criticality",
    .summary = "two-group k-eigenvalue solve through the xs library route",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
