// Twisted-mesh scenario: the workload the SCC scheduler exists for. At
// large twists the per-angle dependency graphs develop cycles and the
// paper's bucketed schedule construction aborts; with --cycles lag-scc the
// Tarjan-based breaker lags the weakest face of every cyclic component and
// the solve converges anyway. The scenario reports how many faces were
// lagged, the bucket-occupancy profile and the iteration cost of the lag.
//
//   ./unsnap --scenario twisted                      # lag-scc, 2.5 rad
//   ./unsnap --scenario twisted --cycles abort       # watch it fail
//   ./unsnap --scenario twisted --twist 0.3          # acyclic comparison

#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/scenario.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "8", "elements across x and y");
  cli.option("nz", "4", "elements along z");
  cli.option("twist", "2.5", "mesh twist in radians (cycles from ~1)");
  cli.option("nang", "9", "angles per octant");
  cli.option("ng", "2", "energy groups");
  cli.option("c", "0.3", "scattering ratio");
  cli.option("cycles", "lag-scc",
             "cycle strategy: abort | lag-greedy | lag-scc");
  cli.option("scheme", "angle-batch",
             "concurrency: serial | elements | groups | elements-groups | "
             "angles-atomic | angle-batch");
  cli.option("epsi", "1e-6", "convergence tolerance");
  cli.option("threads", "0", "OpenMP threads (0 = default)");
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  const api::Problem problem =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, cli.get_int("nz")},
                 .twist = cli.get_double("twist"),
                 .shuffle_seed = 11,
                 .cycle_strategy =
                     sweep::cycle_strategy_from_string(cli.get("cycles"))})
          .angular({.nang = cli.get_int("nang"),
                    .quadrature = angular::QuadratureKind::Product})
          .materials({.num_groups = cli.get_int("ng"),
                      .mat_opt = 0,
                      .scattering_ratio = cli.get_double("c")})
          .source({.src_opt = 1})
          .iteration({.epsi = cli.get_double("epsi"),
                      .iitm = 100,
                      .oitm = 20,
                      .fixed_iterations = false})
          .execution({.scheme = snap::scheme_from_string(cli.get("scheme")),
                      .num_threads = cli.get_int("threads")})
          .build();

  std::printf("UnSNAP twisted: %.3g rad over %dx%dx%d hexes — the strongly "
              "twisted scenario space\n\n",
              problem.input().twist, nx, nx, cli.get_int("nz"));
  const auto solver = problem.make_solver();
  const core::IterationResult result = solver->run();
  api::print_standard_report(*solver, result);
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "twisted",
    .summary = "strongly twisted mesh through the SCC cycle breaker",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
