// Spatial convergence study with a manufactured solution (method of
// manufactured solutions): solves a smooth trigonometric exact solution
// on successively refined twisted meshes for several element orders and
// reports the observed L2 convergence order. Demonstrates the paper's
// §II-C claim that higher-order elements buy accuracy per element —
// the reason the FEM's extra FLOPs can pay for themselves.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/manufactured.hpp"
#include "core/transport_solver.hpp"
#include "util/cli.hpp"

using namespace unsnap;

int main(int argc, char** argv) {
  Cli cli("convergence_order", "MMS h-convergence across element orders");
  cli.option("max-order", "3", "largest finite element order");
  cli.option("levels", "3", "number of mesh refinements");
  if (!cli.parse(argc, argv)) return 0;

  const auto ms = core::ManufacturedSolution::trigonometric();
  std::printf("MMS convergence, exact solution 2 + sin/cos products, "
              "twisted meshes\n");

  for (int order = 1; order <= cli.get_int("max-order"); ++order) {
    std::printf("\norder %d (expected L2 order ~%d):\n", order, order + 1);
    std::printf("  mesh      L2 error      observed order\n");
    double previous = 0.0;
    for (int level = 0; level < cli.get_int("levels"); ++level) {
      const int cells = 2 << level;  // 2, 4, 8
      snap::Input input;
      input.dims = {cells, cells, cells};
      input.order = order;
      input.nang = 4;
      input.ng = 1;
      input.twist = 0.01;
      input.shuffle_seed = 5;
      // Homogeneous pure absorber: material 2 always scatters (its ratio
      // is c + 0.1), which would need source iterations; with mat_opt 0
      // and c = 0 a single sweep solves the problem exactly in angle.
      input.mat_opt = 0;
      input.scattering_ratio = 0.0;
      input.iitm = 1;
      input.oitm = 1;

      core::TransportSolver solver(input);
      core::apply_manufactured(solver, ms);
      solver.run();
      const double error = core::l2_error(solver, ms);
      if (previous > 0.0)
        std::printf("  %d^3      %.6e   %.2f\n", cells, error,
                    std::log2(previous / error));
      else
        std::printf("  %d^3      %.6e   --\n", cells, error);
      previous = error;
    }
  }

  std::printf(
      "\nReading: each extra order buys roughly one extra power of h —\n"
      "coarser meshes for the same error, which is the memory trade the\n"
      "paper's §II-C discusses.\n");
  return 0;
}
