// Spatial convergence scenario with a manufactured solution (method of
// manufactured solutions): solves a smooth trigonometric exact solution
// on successively refined twisted meshes for several element orders and
// reports the observed L2 convergence order. Demonstrates the paper's
// §II-C claim that higher-order elements buy accuracy per element —
// the reason the FEM's extra FLOPs can pay for themselves.

#include <cmath>
#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/scenario.hpp"
#include "core/manufactured.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("max-order", "3", "largest finite element order");
  cli.option("levels", "3", "number of mesh refinements");
}

int run(const Cli& cli) {
  const auto ms = core::ManufacturedSolution::trigonometric();
  std::printf("MMS convergence, exact solution 2 + sin/cos products, "
              "twisted meshes\n");

  for (int order = 1; order <= cli.get_int("max-order"); ++order) {
    std::printf("\norder %d (expected L2 order ~%d):\n", order, order + 1);
    std::printf("  mesh      L2 error      observed order\n");
    double previous = 0.0;
    for (int level = 0; level < cli.get_int("levels"); ++level) {
      const int cells = 2 << level;  // 2, 4, 8
      // Homogeneous pure absorber: material 2 always scatters (its ratio
      // is c + 0.1), which would need source iterations; with mat_opt 0
      // and c = 0 a single sweep solves the problem exactly in angle.
      const api::Problem problem =
          api::ProblemBuilder()
              .mesh({.dims = {cells, cells, cells},
                     .twist = 0.01,
                     .shuffle_seed = 5,
                     .order = order})
              .angular({.nang = 4})
              .materials({.num_groups = 1,
                          .mat_opt = 0,
                          .scattering_ratio = 0.0})
              .iteration({.iitm = 1, .oitm = 1})
              .build();

      const auto solver = problem.make_solver();
      core::apply_manufactured(*solver, ms);
      solver->run();
      const double error = core::l2_error(*solver, ms);
      if (previous > 0.0)
        std::printf("  %d^3      %.6e   %.2f\n", cells, error,
                    std::log2(previous / error));
      else
        std::printf("  %d^3      %.6e   --\n", cells, error);
      previous = error;
    }
  }

  std::printf(
      "\nReading: each extra order buys roughly one extra power of h —\n"
      "coarser meshes for the same error, which is the memory trade the\n"
      "paper's §II-C discusses.\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "convergence_order",
    .summary = "MMS h-convergence across element orders",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
