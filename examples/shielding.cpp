// Shielding study: a slab source, a dense shield of varying total cross
// section, and a detector region behind it — the classic deep-penetration
// configuration that motivates deterministic transport. Demonstrates
// building fully custom problem data (materials, cross sections, source
// placement) on top of the UnSNAP discretisation, and writes a VTK file of
// the attenuated flux.
//
// Geometry (z axis):  [ source | shield | detector ]
//                     0       1.0      1.8         3.0
// The detector band sits directly behind the shield so the measured
// attenuation tracks the shield optical depth instead of distance decay.

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/transport_solver.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"

using namespace unsnap;

namespace {

// Three "materials": near-void filler, source medium and shield.
snap::CrossSections shield_xs(int ng, double shield_sigt) {
  snap::CrossSections xs;
  xs.num_materials = 3;
  xs.ng = ng;
  const auto nm = static_cast<std::size_t>(xs.num_materials);
  const auto g_count = static_cast<std::size_t>(ng);
  xs.sigt.resize({nm, g_count});
  xs.sigs.resize({nm, g_count});
  xs.siga.resize({nm, g_count});
  xs.slgg.resize({nm, g_count, g_count}, 0.0);
  const double sigt[3] = {0.05, 1.0, shield_sigt};
  const double ratio[3] = {0.1, 0.5, 0.2};  // shields absorb, not scatter
  for (int m = 0; m < 3; ++m)
    for (int g = 0; g < ng; ++g) {
      xs.sigt(m, g) = sigt[m];
      xs.sigs(m, g) = ratio[m] * sigt[m];
      xs.siga(m, g) = xs.sigt(m, g) - xs.sigs(m, g);
      xs.slgg(m, g, g) = xs.sigs(m, g);  // isotropic in-group only
    }
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("shielding", "slab source / shield / detector attenuation study");
  cli.option("nx", "6", "elements across x and y");
  cli.option("nz", "18", "elements along the shield axis");
  cli.option("order", "1", "finite element order");
  cli.option("nang", "8", "angles per octant");
  cli.option("vtk", "shielding.vtk", "VTK output file ('' to disable)");
  if (!cli.parse(argc, argv)) return 0;

  snap::Input input;
  input.dims = {cli.get_int("nx"), cli.get_int("nx"), cli.get_int("nz")};
  input.extent = {1.0, 1.0, 3.0};
  input.order = cli.get_int("order");
  input.nang = cli.get_int("nang");
  input.quadrature = angular::QuadratureKind::Product;
  input.ng = 2;
  input.twist = 0.001;
  input.shuffle_seed = 7;
  input.fixed_iterations = false;
  input.epsi = 1e-6;
  input.iitm = 200;
  input.oitm = 5;

  std::printf("Shielding study: %dx%dx%d elements, order %d\n",
              input.dims[0], input.dims[1], input.dims[2], input.order);
  std::printf("\nshield sigt   detector <phi>   attenuation vs no shield\n");

  const auto disc = std::make_shared<const core::Discretization>(input);

  // Region assignment by centroid.
  std::vector<int> material(static_cast<std::size_t>(disc->num_elements()));
  NDArray<double, 2> qext(
      {static_cast<std::size_t>(disc->num_elements()),
       static_cast<std::size_t>(input.ng)},
      0.0);
  for (int e = 0; e < disc->num_elements(); ++e) {
    const double z = disc->mesh().centroid(e)[2];
    if (z < 1.0) {
      material[e] = 1;  // source medium
      for (int g = 0; g < input.ng; ++g) qext(e, g) = 1.0;
    } else if (z < 1.8) {
      material[e] = 2;  // shield
    } else {
      material[e] = 0;  // filler / detector
    }
  }

  double unshielded = -1.0;
  std::vector<double> detector_flux;
  for (const double shield_sigt : {0.05, 1.0, 2.0, 4.0}) {
    core::ProblemData problem(*disc, shield_xs(input.ng, shield_sigt),
                              material, qext);
    core::TransportSolver solver(disc, input, std::move(problem));
    solver.run();

    // Volume-average group-0 flux in the band directly behind the shield.
    double integral = 0.0, volume = 0.0;
    for (int e = 0; e < disc->num_elements(); ++e) {
      const double z = disc->mesh().centroid(e)[2];
      if (z < 1.8 || z > 2.3) continue;
      const double* w = disc->integrals().node_weights(e);
      const double* ph = solver.scalar_flux().at(e, 0);
      for (int i = 0; i < disc->num_nodes(); ++i) integral += w[i] * ph[i];
      volume += disc->integrals().volume(e);
    }
    const double detector = integral / volume;
    if (unshielded < 0.0) unshielded = detector;
    std::printf("  %6.2f      %.6e     %8.2fx\n", shield_sigt, detector,
                unshielded / detector);
    detector_flux.push_back(detector);

    if (shield_sigt == 4.0 && !cli.get("vtk").empty()) {
      std::vector<double> mat_field(material.begin(), material.end());
      io::write_vtk(cli.get("vtk"), disc->mesh(),
                    {{"flux_g0",
                      io::cell_average_flux(*disc, solver.scalar_flux(), 0)},
                     {"material", mat_field}});
      std::printf("  wrote %s\n", cli.get("vtk").c_str());
    }
  }

  // Rough sanity: a 0.8 mfp-thick shield at sigt=4 (3.2 mfp) should cut
  // the detector flux by orders of magnitude relative to near-void.
  std::printf("\nnormal-incidence beam estimate across the 0.8-thick "
              "shield:\n");
  for (const double s : {1.0, 2.0, 4.0})
    std::printf("  sigt %.1f: exp(-sigt * 0.8) = %.3e\n", s,
                std::exp(-s * 0.8));
  std::printf(
      "(oblique ordinates see longer chords through the slab, so the\n"
      "measured attenuation is somewhat stronger than this estimate;\n"
      "scattering build-up pushes the other way)\n");
  return 0;
}
