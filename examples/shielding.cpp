// Shielding scenario: a slab source, a dense shield of varying total cross
// section, and a detector region behind it — the classic deep-penetration
// configuration that motivates deterministic transport. Demonstrates the
// declarative API's custom-material route (explicit cross sections plus
// centroid material/source maps) and the shared-discretisation build for
// parameter sweeps, and writes a VTK file of the attenuated flux.
//
// Geometry (z axis):  [ source | shield | detector ]
//                     0       1.0      1.8         3.0
// The detector band sits directly behind the shield so the measured
// attenuation tracks the shield optical depth instead of distance decay.

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/scenario.hpp"
#include "io/vtk_writer.hpp"

namespace {

using namespace unsnap;

// Three "materials": near-void filler, source medium and shield.
snap::CrossSections shield_xs(int ng, double shield_sigt) {
  snap::CrossSections xs;
  xs.num_materials = 3;
  xs.ng = ng;
  const auto nm = static_cast<std::size_t>(xs.num_materials);
  const auto g_count = static_cast<std::size_t>(ng);
  xs.sigt.resize({nm, g_count});
  xs.sigs.resize({nm, g_count});
  xs.siga.resize({nm, g_count});
  xs.slgg.resize({nm, g_count, g_count}, 0.0);
  const double sigt[3] = {0.05, 1.0, shield_sigt};
  const double ratio[3] = {0.1, 0.5, 0.2};  // shields absorb, not scatter
  for (int m = 0; m < 3; ++m)
    for (int g = 0; g < ng; ++g) {
      xs.sigt(m, g) = sigt[m];
      xs.sigs(m, g) = ratio[m] * sigt[m];
      xs.siga(m, g) = xs.sigt(m, g) - xs.sigs(m, g);
      xs.slgg(m, g, g) = xs.sigs(m, g);  // isotropic in-group only
    }
  return xs;
}

void declare_options(Cli& cli) {
  cli.option("nx", "6", "elements across x and y");
  cli.option("nz", "18", "elements along the shield axis");
  cli.option("order", "1", "finite element order");
  cli.option("nang", "8", "angles per octant");
  cli.option("vtk", "shielding.vtk", "VTK output file ('' to disable)");
}

int run(const Cli& cli) {
  const int ng = 2;
  api::ProblemBuilder builder;
  builder
      .mesh({.dims = {cli.get_int("nx"), cli.get_int("nx"),
                      cli.get_int("nz")},
             .extent = {1.0, 1.0, 3.0},
             .twist = 0.001,
             .shuffle_seed = 7,
             .order = cli.get_int("order")})
      .angular({.nang = cli.get_int("nang"),
                .quadrature = angular::QuadratureKind::Product})
      .source({.profile = [](const fem::Vec3& c, int) {
        return c[2] < 1.0 ? 1.0 : 0.0;  // source medium only
      }})
      .iteration({.epsi = 1e-6,
                  .iitm = 200,
                  .oitm = 5,
                  .fixed_iterations = false});
  const auto material_map = [](const fem::Vec3& c) {
    if (c[2] < 1.0) return 1;  // source medium
    if (c[2] < 1.8) return 2;  // shield
    return 0;                  // filler / detector
  };

  std::printf("Shielding study: %dx%dx%d elements, order %d\n",
              cli.get_int("nx"), cli.get_int("nx"), cli.get_int("nz"),
              cli.get_int("order"));
  std::printf("\nshield sigt   detector <phi>   attenuation vs no shield\n");

  // The mesh/schedules are shared across the sigt sweep: the first build
  // creates the discretisation, the rest reuse it.
  std::shared_ptr<const core::Discretization> disc;
  double unshielded = -1.0;
  for (const double shield_sigt : {0.05, 1.0, 2.0, 4.0}) {
    builder.materials({.cross_sections = shield_xs(ng, shield_sigt),
                       .material_map = material_map});
    const api::Problem problem = disc ? builder.build(disc) : builder.build();
    if (!disc) disc = problem.discretization_ptr();

    const auto solver = problem.make_solver();
    solver->run();

    // Volume-average group-0 flux in the band directly behind the shield.
    const double detector = api::region_average_flux(
        *disc, solver->scalar_flux(), 0,
        [](const fem::Vec3& c) { return c[2] >= 1.8 && c[2] <= 2.3; });
    if (unshielded < 0.0) unshielded = detector;
    std::printf("  %6.2f      %.6e     %8.2fx\n", shield_sigt, detector,
                unshielded / detector);

    if (shield_sigt == 4.0 && !cli.get("vtk").empty()) {
      std::vector<double> mat_field(
          problem.data().material.begin(), problem.data().material.end());
      io::write_vtk(cli.get("vtk"), disc->mesh(),
                    {{"flux_g0",
                      io::cell_average_flux(*disc, solver->scalar_flux(), 0)},
                     {"material", mat_field}});
      std::printf("  wrote %s\n", cli.get("vtk").c_str());
    }
  }

  // Rough sanity: a 0.8 mfp-thick shield at sigt=4 (3.2 mfp) should cut
  // the detector flux by orders of magnitude relative to near-void.
  std::printf("\nnormal-incidence beam estimate across the 0.8-thick "
              "shield:\n");
  for (const double s : {1.0, 2.0, 4.0})
    std::printf("  sigt %.1f: exp(-sigt * 0.8) = %.3e\n", s,
                std::exp(-s * 0.8));
  std::printf(
      "(oblique ordinates see longer chords through the slab, so the\n"
      "measured attenuation is somewhat stronger than this estimate;\n"
      "scattering build-up pushes the other way)\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "shielding",
    .summary = "slab source / shield / detector attenuation study",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
