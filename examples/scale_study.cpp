// Simulated-scale scenario: the sweep pipeline modelled on virtual rank
// grids far beyond what the simulated-MPI Network can instantiate. For a
// ladder of px*py*pz decompositions (up to thousands of ranks, no
// submeshes, no threads) the comm::simulate_sweep_scale model reports the
// per-octant-ordering pipeline economics — fill, drain, makespan,
// parallel efficiency and occupancy — the regime where Vermaak et al.'s
// volumetric decompositions live. A small real distributed solve at the
// bottom of the ladder cross-checks the model against measured pipeline
// idle fractions.

#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"
#include "comm/distributed.hpp"
#include "comm/scale_model.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("max_ranks", "4096", "stop the ladder at this many ranks");
  cli.option("rank_work", "1.0", "time units per rank per octant sweep");
  cli.option("hop_latency", "0.0", "time units per cross-rank hand-off");
  cli.option("verify_nx", "8", "mesh extent of the real cross-check solve");
}

int run(const Cli& cli) {
  const int max_ranks = cli.get_int("max_ranks");
  const double rank_work = cli.get_double("rank_work");
  const double hop_latency = cli.get_double("hop_latency");

  const int ladder[][3] = {{2, 2, 1},   {2, 2, 2},   {4, 4, 2},
                           {4, 4, 4},   {8, 8, 4},   {16, 16, 4},
                           {16, 16, 16}};
  std::printf("Virtual-rank sweep pipeline model "
              "(rank_work %.2f, hop latency %.2f)\n\n",
              rank_work, hop_latency);
  for (const auto& g : ladder) {
    const int ranks = g[0] * g[1] * g[2];
    if (ranks > max_ranks) break;
    const api::RunRecord::ScaleStats stats =
        api::make_scale_stats(g[0], g[1], g[2], rank_work, hop_latency);
    api::print_scale_report(stats);
    std::printf("\n");
  }

  // Cross-check the bottom of the ladder against a real distributed
  // solve: the measured pipeline idle fraction should agree in shape with
  // the modelled one (the model assumes unit-time uniform rank sweeps).
  const int nx = cli.get_int("verify_nx");
  std::printf("cross-check: real 2x2x2 pipelined solve on a %d^3 mesh\n",
              nx);
  const snap::Input input =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, nx}})
          .angular({.nang = 2})
          .materials({.num_groups = 1, .mat_opt = 1, .scattering_ratio = 0.5})
          .source({.src_opt = 1})
          .iteration({.epsi = 1e-6, .iitm = 50, .oitm = 4,
                      .fixed_iterations = false})
          .execution({.scheme = snap::ConcurrencyScheme::Serial,
                      .num_threads = 1})
          .decomposition({.px = 2, .py = 2, .pz = 2,
                          .exchange = snap::SweepExchange::Pipelined})
          .to_input();
  comm::DistributedSweepSolver solver(input, 2, 2, 2);
  const comm::DistributedSweepResult result = solver.run();
  api::print_decomposition_report(solver, result);

  std::printf(
      "\nReading: efficiency falls as fill and drain grow with the rank\n"
      "grid's diagonal; interleaving octant wavefronts (each rank serving\n"
      "whichever octant it is shallowest in) recovers part of the loss.\n"
      "The model costs microseconds per grid, so thousand-rank designs\n"
      "can be screened before ever building a submesh.\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "scale_study",
    .summary = "modelled sweep pipelines on thousands of virtual ranks",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
