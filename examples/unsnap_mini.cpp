// The full-deck scenario (the legacy `unsnap_mini` driver): exposes every
// knob of the problem definition on the command line, runs the solve and
// prints a SNAP-style summary. This is the scenario a performance
// engineer scripts against; every experiment in the paper is a particular
// set of these flags.

#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/run.hpp"
#include "api/scenario.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "8", "elements in x");
  cli.option("ny", "0", "elements in y (0 = nx)");
  cli.option("nz", "0", "elements in z (0 = nx)");
  cli.option("lx", "1.0", "domain extent x (y, z scale with cells)");
  cli.option("order", "1", "finite element order (Table I: 1..5)");
  cli.option("nang", "8", "angles per octant");
  cli.option("ng", "4", "energy groups");
  cli.option("nmom", "1", "scattering Legendre orders (1 = isotropic)");
  cli.option("quad", "snap", "angular quadrature: snap | product");
  cli.option("mat", "1", "material layout option 0|1|2");
  cli.option("src", "1", "source layout option 0|1|2");
  cli.option("c", "0.5", "scattering ratio of material 1");
  cli.option("twist", "0.001", "mesh twist (radians)");
  cli.option("seed", "1", "element shuffle seed (0 = structured order)");
  cli.option("epsi", "1e-4", "convergence tolerance");
  cli.option("iitm", "5", "max inner iterations per outer");
  cli.option("oitm", "1", "max outer iterations");
  cli.flag("converge", "iterate to epsi instead of fixed iitm x oitm");
  cli.option("inners", "si",
             "inner iteration scheme: si (source iteration) | gmres");
  cli.option("gmres-restart", "20", "GMRES restart length");
  cli.option("gmres-iters", "100", "max Krylov iterations per inner solve");
  cli.flag("verbose", "trace inner/Krylov progress live (observer events)");
  cli.option("layout", "aeg", "flux layout: aeg | age");
  cli.option("scheme", "elements-groups",
             "concurrency: serial | elements | groups | elements-groups | "
             "angles-atomic | angle-batch");
  cli.option("solver", "ge", "local solver: ge | ge-nopivot | lu");
  cli.option("threads", "0", "OpenMP threads (0 = default)");
  cli.flag("time-solve", "record % of time in the dense solve");
  cli.option("cycles", "abort",
             "sweep cycle strategy: abort | lag-greedy | lag-scc");
  cli.flag("reflect", "reflective (instead of vacuum) on all six sides");
  cli.flag("validate", "run full mesh validation before solving");
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  const std::array<int, 3> dims{
      nx, cli.get_int("ny") > 0 ? cli.get_int("ny") : nx,
      cli.get_int("nz") > 0 ? cli.get_int("nz") : nx};
  const double lx = cli.get_double("lx");

  api::ProblemBuilder builder;
  builder
      .mesh({.dims = dims,
             .extent = {lx, lx * dims[1] / dims[0], lx * dims[2] / dims[0]},
             .twist = cli.get_double("twist"),
             .shuffle_seed = static_cast<std::uint64_t>(cli.get_long("seed")),
             .order = cli.get_int("order"),
             .validate = cli.get_flag("validate"),
             .cycle_strategy =
                 sweep::cycle_strategy_from_string(cli.get("cycles"))})
      .angular({.nang = cli.get_int("nang"),
                .quadrature = angular::quadrature_from_string(cli.get("quad")),
                .nmom = cli.get_int("nmom")})
      .materials({.num_groups = cli.get_int("ng"),
                  .mat_opt = cli.get_int("mat"),
                  .scattering_ratio = cli.get_double("c")})
      .source({.src_opt = cli.get_int("src")})
      .iteration({.epsi = cli.get_double("epsi"),
                  .iitm = cli.get_int("iitm"),
                  .oitm = cli.get_int("oitm"),
                  .fixed_iterations = !cli.get_flag("converge"),
                  .scheme =
                      snap::iteration_scheme_from_string(cli.get("inners")),
                  .gmres_restart = cli.get_int("gmres-restart"),
                  .gmres_max_iters = cli.get_int("gmres-iters")})
      .execution({.layout = snap::layout_from_string(cli.get("layout")),
                  .scheme = snap::scheme_from_string(cli.get("scheme")),
                  .solver = linalg::solver_from_string(cli.get("solver")),
                  .num_threads = cli.get_int("threads"),
                  .time_solve = cli.get_flag("time-solve")});
  if (cli.get_flag("reflect"))
    builder.all_boundaries(snap::Input::Bc::Reflective);

  const api::Problem problem = builder.build();
  const snap::Input& input = problem.input();
  std::printf("UnSNAP  %dx%dx%d hexes, order %d (%d nodes/elem), "
              "%d angles/octant x 8, %d groups, nmom %d\n",
              input.dims[0], input.dims[1], input.dims[2], input.order,
              (input.order + 1) * (input.order + 1) * (input.order + 1),
              input.nang, input.ng, input.nmom);
  std::printf("        layout %s, scheme %s, solver %s, twist %.4g, "
              "shuffle %llu\n",
              snap::to_string(input.layout).c_str(),
              snap::to_string(input.scheme).c_str(),
              linalg::to_string(input.solver).c_str(), input.twist,
              static_cast<unsigned long long>(input.shuffle_seed));

  const auto solver = problem.make_solver();
  const auto& disc = solver->discretization();
  std::printf("        %d unique sweep schedules for %d directions; "
              "integrals %.1f MB; psi %.1f MB\n",
              disc.schedules().unique_count(),
              angular::kOctants * input.nang,
              static_cast<double>(disc.integrals().bytes()) / (1 << 20),
              static_cast<double>(solver->angular_flux().size() *
                                  sizeof(double)) /
                  (1 << 20));

  // Verbose progress hangs off the solver's iteration events (the
  // api::IterationObserver seam) instead of a printf path inside run().
  api::ProgressObserver progress;
  if (cli.get_flag("verbose")) solver->set_observer(&progress);
  const core::IterationResult result = solver->run();

  std::printf("\n");
  api::print_iteration_report(result, input.time_solve);
  std::printf("\n");
  api::print_balance_report(solver->balance());
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "mini",
    .summary = "full SNAP-style deck on the command line (legacy "
               "unsnap_mini)",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
