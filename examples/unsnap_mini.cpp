// The UnSNAP mini-app driver: exposes the full snap::Input deck on the
// command line, runs the solve and prints a SNAP-style summary. This is
// the binary a performance engineer scripts against; every experiment in
// the paper is a particular set of these flags.

#include <cstdio>

#include "core/transport_solver.hpp"
#include "util/cli.hpp"

using namespace unsnap;

int main(int argc, char** argv) {
  Cli cli("unsnap_mini", "UnSNAP mini-app: DG discrete ordinates transport "
                         "on an unstructured hex mesh");
  cli.option("nx", "8", "elements in x");
  cli.option("ny", "0", "elements in y (0 = nx)");
  cli.option("nz", "0", "elements in z (0 = nx)");
  cli.option("lx", "1.0", "domain extent x (y, z scale with cells)");
  cli.option("order", "1", "finite element order (Table I: 1..5)");
  cli.option("nang", "8", "angles per octant");
  cli.option("ng", "4", "energy groups");
  cli.option("nmom", "1", "scattering Legendre orders (1 = isotropic)");
  cli.option("quad", "snap", "angular quadrature: snap | product");
  cli.option("mat", "1", "material layout option 0|1|2");
  cli.option("src", "1", "source layout option 0|1|2");
  cli.option("c", "0.5", "scattering ratio of material 1");
  cli.option("twist", "0.001", "mesh twist (radians)");
  cli.option("seed", "1", "element shuffle seed (0 = structured order)");
  cli.option("epsi", "1e-4", "convergence tolerance");
  cli.option("iitm", "5", "max inner iterations per outer");
  cli.option("oitm", "1", "max outer iterations");
  cli.flag("converge", "iterate to epsi instead of fixed iitm x oitm");
  cli.option("layout", "aeg", "flux layout: aeg | age");
  cli.option("scheme", "elements-groups",
             "concurrency: serial | elements | groups | elements-groups | "
             "angles-atomic");
  cli.option("solver", "ge", "local solver: ge | ge-nopivot | lu");
  cli.option("threads", "0", "OpenMP threads (0 = default)");
  cli.flag("time-solve", "record % of time in the dense solve");
  cli.flag("break-cycles", "lag faces to break cyclic sweep dependencies");
  cli.flag("reflect", "reflective (instead of vacuum) on all six sides");
  cli.flag("validate", "run full mesh validation before solving");
  if (!cli.parse(argc, argv)) return 0;

  snap::Input input;
  const int nx = cli.get_int("nx");
  input.dims = {nx, cli.get_int("ny") > 0 ? cli.get_int("ny") : nx,
                cli.get_int("nz") > 0 ? cli.get_int("nz") : nx};
  const double lx = cli.get_double("lx");
  input.extent = {lx, lx * input.dims[1] / input.dims[0],
                  lx * input.dims[2] / input.dims[0]};
  input.order = cli.get_int("order");
  input.nang = cli.get_int("nang");
  input.ng = cli.get_int("ng");
  input.nmom = cli.get_int("nmom");
  input.quadrature = angular::quadrature_from_string(cli.get("quad"));
  input.mat_opt = cli.get_int("mat");
  input.src_opt = cli.get_int("src");
  input.scattering_ratio = cli.get_double("c");
  input.twist = cli.get_double("twist");
  input.shuffle_seed = static_cast<std::uint64_t>(cli.get_long("seed"));
  input.epsi = cli.get_double("epsi");
  input.iitm = cli.get_int("iitm");
  input.oitm = cli.get_int("oitm");
  input.fixed_iterations = !cli.get_flag("converge");
  input.layout = snap::layout_from_string(cli.get("layout"));
  input.scheme = snap::scheme_from_string(cli.get("scheme"));
  input.solver = linalg::solver_from_string(cli.get("solver"));
  input.num_threads = cli.get_int("threads");
  input.time_solve = cli.get_flag("time-solve");
  input.break_cycles = cli.get_flag("break-cycles");
  input.validate_mesh = cli.get_flag("validate");
  if (cli.get_flag("reflect"))
    for (auto& b : input.boundary) b = snap::Input::Bc::Reflective;

  std::printf("UnSNAP  %dx%dx%d hexes, order %d (%d nodes/elem), "
              "%d angles/octant x 8, %d groups, nmom %d\n",
              input.dims[0], input.dims[1], input.dims[2], input.order,
              (input.order + 1) * (input.order + 1) * (input.order + 1),
              input.nang, input.ng, input.nmom);
  std::printf("        layout %s, scheme %s, solver %s, twist %.4g, "
              "shuffle %llu\n",
              snap::to_string(input.layout).c_str(),
              snap::to_string(input.scheme).c_str(),
              linalg::to_string(input.solver).c_str(), input.twist,
              static_cast<unsigned long long>(input.shuffle_seed));

  core::TransportSolver solver(input);
  const auto& disc = solver.discretization();
  std::printf("        %d unique sweep schedules for %d directions; "
              "integrals %.1f MB; psi %.1f MB\n",
              disc.schedules().unique_count(),
              angular::kOctants * input.nang,
              static_cast<double>(disc.integrals().bytes()) / (1 << 20),
              static_cast<double>(solver.angular_flux().size() *
                                  sizeof(double)) /
                  (1 << 20));

  const core::IterationResult result = solver.run();

  std::printf("\n  outers %d   inners %d   %s (inner df %.3e)\n",
              result.outers, result.inners,
              result.converged ? "converged" : "not converged",
              result.final_inner_change);
  std::printf("  total %.4f s   assemble/solve %.4f s", result.total_seconds,
              result.assemble_solve_seconds);
  if (input.time_solve)
    std::printf("   (%.0f%% in solve)",
                100.0 * result.solve_seconds /
                    result.assemble_solve_seconds);
  std::printf("\n");

  const core::BalanceReport balance = solver.balance();
  std::printf("  balance: source %.6e  absorption %.6e  leakage %.6e\n"
              "           inflow %.6e  residual %.3e\n",
              balance.source, balance.absorption, balance.leakage,
              balance.inflow, balance.residual());
  return 0;
}
