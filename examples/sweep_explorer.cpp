// Sweep-schedule explorer scenario: builds a twisted unstructured mesh,
// constructs the bucketed wavefront schedule for a chosen ordinate and
// writes the bucket index ("tlevel") of every element to VTK — load it in
// ParaView and the wavefronts are directly visible as bands marching
// through the mesh. Also prints the bucket-occupancy profile (the paper's
// available element parallelism) and the schedule-dedup statistics.
//
// This scenario deliberately stays below the Problem layer: it only needs
// mesh + quadrature + schedules, so it skips the element-integrals and
// problem-data construction a full api::Problem would pay for.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "io/vtk_writer.hpp"
#include "mesh/mesh_builder.hpp"
#include "sweep/schedule.hpp"
#include "util/assert.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "12", "elements per dimension");
  cli.option("twist", "0.3", "mesh twist in radians");
  cli.option("nang", "8", "angles per octant");
  cli.option("octant", "0", "octant of the visualised ordinate");
  cli.option("angle", "0", "angle index of the visualised ordinate");
  cli.option("vtk", "sweep_buckets.vtk", "VTK output ('' to disable)");
  cli.option("cycles", "abort",
             "cycle strategy: abort | lag-greedy | lag-scc");
}

int run(const Cli& cli) {
  mesh::MeshOptions options;
  const int nx = cli.get_int("nx");
  options.dims = {nx, nx, nx};
  options.twist = cli.get_double("twist");
  options.shuffle_seed = 9;
  const mesh::HexMesh mesh = mesh::build_brick_mesh(options);

  const angular::QuadratureSet quad(angular::QuadratureKind::SnapLike,
                                    cli.get_int("nang"));
  // Strong twists can make the dependency graph cyclic; retry with the
  // SCC cycle-breaking schedule so exploration never dead-ends.
  sweep::CycleStrategy strategy =
      sweep::cycle_strategy_from_string(cli.get("cycles"));
  std::unique_ptr<sweep::ScheduleSet> schedules;
  try {
    schedules = std::make_unique<sweep::ScheduleSet>(mesh, quad, strategy);
  } catch (const NumericalError& err) {
    std::printf("note: %s\n      retrying with --cycles lag-scc\n",
                err.what());
    strategy = sweep::CycleStrategy::LagScc;
    schedules = std::make_unique<sweep::ScheduleSet>(mesh, quad, strategy);
  }
  const sweep::ScheduleSet& set = *schedules;
  std::printf("mesh %d^3 twisted %.3g rad: %d unique schedules for %d "
              "directions (cycles: %s)\n",
              nx, options.twist, set.unique_count(),
              angular::kOctants * quad.per_octant(),
              sweep::to_string(strategy).c_str());

  const int oct = cli.get_int("octant");
  const int angle = cli.get_int("angle");
  const sweep::SweepSchedule& schedule = set.get(oct, angle);
  const sweep::ScheduleStats stats = sweep::schedule_stats(schedule);
  const auto dir = quad.direction(oct, angle);
  std::printf("ordinate (%.3f, %.3f, %.3f): %d buckets, occupancy "
              "min/mean/max = %d/%.1f/%d, %zu lagged faces\n",
              dir[0], dir[1], dir[2], stats.buckets, stats.min_bucket,
              stats.mean_bucket, stats.max_bucket,
              schedule.lagged_faces().size());

  // Occupancy histogram over the sweep's progress.
  std::printf("\nbucket   elements  (parallel work per wavefront)\n");
  const int step = std::max(1, schedule.num_buckets() / 16);
  for (int b = 0; b < schedule.num_buckets(); b += step)
    std::printf("  %4d   %7zu   %s\n", b, schedule.bucket(b).size(),
                std::string(schedule.bucket(b).size() * 60 /
                                static_cast<std::size_t>(stats.max_bucket),
                            '#')
                    .c_str());

  if (!cli.get("vtk").empty()) {
    std::vector<double> tlevel(static_cast<std::size_t>(mesh.num_elements()));
    for (int b = 0; b < schedule.num_buckets(); ++b)
      for (const int e : schedule.bucket(b)) tlevel[e] = b;
    io::write_vtk(cli.get("vtk"), mesh, {{"tlevel", tlevel}});
    std::printf("\nwrote %s (colour by 'tlevel' to see the wavefronts)\n",
                cli.get("vtk").c_str());
  }
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "sweep_explorer",
    .summary = "visualise wavefront buckets of a sweep",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
