// Diffusive scenario family: the shielding deck re-materialised so the
// shield *scatters* instead of absorbs, with the scattering ratio c pushed
// toward 1 (c = 0.9 / 0.99 / 0.999). Source iteration's error contracts by
// roughly c per sweep on optically thick regions, so these decks need
// hundreds of sweeps — or never converge inside default budgets — while
// the sweep-preconditioned GMRES inners (src/accel/) solve them in O(10)
// sweeps. The scenario runs both schemes on each c and prints the
// sweeps-to-convergence / wall-time / flux-agreement comparison.
//
// Geometry (z axis):  [ source | shield | detector ]
//                     0       1.0      1.8         3.0

#include <cmath>
#include <cstdio>
#include <vector>

#include "accel/inner.hpp"
#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/scenario.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using namespace unsnap;

// Three materials: thin filler/detector, scattering source medium and a
// thick diffusive shield. `c` is the scattering ratio of the source medium
// and the shield; the filler keeps a benign fixed ratio.
snap::CrossSections diffusive_xs(int ng, double c) {
  snap::CrossSections xs;
  xs.num_materials = 3;
  xs.ng = ng;
  const auto nm = static_cast<std::size_t>(xs.num_materials);
  const auto g_count = static_cast<std::size_t>(ng);
  xs.sigt.resize({nm, g_count});
  xs.sigs.resize({nm, g_count});
  xs.siga.resize({nm, g_count});
  xs.slgg.resize({nm, g_count, g_count}, 0.0);
  const double sigt[3] = {0.1, 5.0, 20.0};
  const double ratio[3] = {0.5, c, c};
  for (int m = 0; m < 3; ++m)
    for (int g = 0; g < ng; ++g) {
      xs.sigt(m, g) = sigt[m];
      xs.sigs(m, g) = ratio[m] * sigt[m];
      xs.siga(m, g) = xs.sigt(m, g) - xs.sigs(m, g);
      xs.slgg(m, g, g) = xs.sigs(m, g);  // in-group only: a pure inner test
    }
  return xs;
}

int material_of(const fem::Vec3& c) {
  if (c[2] < 1.0) return 1;  // source medium
  if (c[2] < 1.8) return 2;  // diffusive shield (16 mfp thick)
  return 0;                  // filler / detector
}

void declare_options(Cli& cli) {
  cli.option("c", "0",
             "single scattering ratio in (0, 1); 0 runs the whole "
             "0.9 / 0.99 / 0.999 family");
  cli.option("nx", "6", "elements across x and y");
  cli.option("nz", "18", "elements along the shield axis");
  cli.option("nang", "4", "angles per octant");
  cli.option("epsi", "1e-6", "convergence tolerance");
  cli.option("iitm", "600", "sweep budget per outer (both schemes)");
  cli.option("oitm", "5", "max outer iterations");
  cli.option("gmres-restart", "20", "GMRES restart length");
  cli.option("gmres-iters", "100", "max Krylov iterations per inner solve");
  cli.flag("verbose", "print per-inner histories of the GMRES runs");
}

int run(const Cli& cli) {
  const int ng = 2;
  std::vector<double> family{0.9, 0.99, 0.999};
  if (cli.get_double("c") != 0.0) {
    require(cli.get_double("c") > 0.0 && cli.get_double("c") < 1.0,
            "diffusive: --c must be in (0, 1)");
    family = {cli.get_double("c")};
  }

  api::ProblemBuilder builder;
  builder
      .mesh({.dims = {cli.get_int("nx"), cli.get_int("nx"),
                      cli.get_int("nz")},
             .extent = {1.0, 1.0, 3.0},
             .twist = 0.001,
             .shuffle_seed = 7})
      .angular({.nang = cli.get_int("nang"),
                .quadrature = angular::QuadratureKind::Product})
      .source({.profile = [](const fem::Vec3& c, int) {
        return c[2] < 1.0 ? 1.0 : 0.0;  // source medium only
      }});

  std::printf("Diffusive family: %dx%dx%d elements, %d angles/octant, "
              "epsi %.1e, sweep budget %d x %d outers\n",
              cli.get_int("nx"), cli.get_int("nx"), cli.get_int("nz"),
              cli.get_int("nang"), cli.get_double("epsi"),
              cli.get_int("iitm"), cli.get_int("oitm"));

  Table table({"c", "si sweeps", "si s", "gmres sweeps", "krylov",
               "gmres s", "sweep ratio", "max flux diff"});
  std::shared_ptr<const core::Discretization> disc;
  for (const double c : family) {
    builder.materials({.cross_sections = diffusive_xs(ng, c),
                       .material_map = material_of});
    core::IterationResult results[2];
    std::vector<double> fluxes[2];
    for (const snap::IterationScheme scheme :
         {snap::IterationScheme::SourceIteration,
          snap::IterationScheme::Gmres}) {
      builder.iteration(
          {.epsi = cli.get_double("epsi"),
           .iitm = cli.get_int("iitm"),
           .oitm = cli.get_int("oitm"),
           .fixed_iterations = false,
           .scheme = scheme,
           .gmres_restart = cli.get_int("gmres-restart"),
           .gmres_max_iters = cli.get_int("gmres-iters")});
      const api::Problem problem =
          disc ? builder.build(disc) : builder.build();
      if (!disc) disc = problem.discretization_ptr();
      const auto solver = problem.make_solver();
      const std::size_t which =
          scheme == snap::IterationScheme::Gmres ? 1 : 0;
      results[which] = solver->run();
      const core::NodalField& phi = solver->scalar_flux();
      fluxes[which].assign(phi.data(), phi.data() + phi.size());
      if (which == 1 && cli.get_flag("verbose")) {
        std::printf("\nc = %g gmres history:\n", c);
        api::print_iteration_report(results[which], false, true);
      }
    }
    // Pointwise agreement between the two converged fluxes (SNAP's
    // relative measure; large where SI hit its budget without converging).
    std::vector<double> delta(fluxes[0].size());
    for (std::size_t i = 0; i < delta.size(); ++i)
      delta[i] = fluxes[1][i] - fluxes[0][i];
    const double diff = accel::max_pointwise_change(delta, fluxes[0]);
    const core::IterationResult& si = results[0];
    const core::IterationResult& gm = results[1];
    table.add_row(
        {c,
         std::string(std::to_string(si.sweeps) +
                     (si.converged ? "" : " (cap)")),
         si.total_seconds, static_cast<long>(gm.sweeps),
         static_cast<long>(gm.krylov_iters), gm.total_seconds,
         static_cast<double>(gm.sweeps) / si.sweeps, diff});
  }
  table.print("source iteration vs sweep-preconditioned GMRES");
  std::printf(
      "\n(sweep ratio is gmres/si; 'cap' marks SI runs that exhausted the\n"
      "sweep budget before reaching epsi — the flux diff column is then\n"
      "dominated by SI's unconverged error)\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "diffusive",
    .summary = "scattering-dominated shielding family (c -> 1): SI vs "
               "GMRES inners",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
