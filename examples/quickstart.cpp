// Quickstart scenario: solve a small SNAP-style fixed-source transport
// problem on a twisted unstructured hex mesh and print the iteration
// history, per-group flux summary and the particle balance.
//
//   ./unsnap --scenario quickstart [--nx 8] [--order 1] [--ng 4] ...
//
// This is the minimal end-to-end use of the declarative API: compose the
// option structs on an api::ProblemBuilder, build, solve, inspect.

#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/scenario.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "8", "elements per dimension");
  cli.option("order", "1", "finite element order (1..5)");
  cli.option("ng", "4", "energy groups");
  cli.option("nang", "6", "angles per octant");
  cli.option("twist", "0.001", "mesh twist in radians");
  cli.option("epsi", "1e-5", "convergence tolerance");
  cli.option("threads", "0", "OpenMP threads (0 = default)");
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  const api::Problem problem =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, nx},
                 .twist = cli.get_double("twist"),
                 .shuffle_seed = 42,  // store the brick as a shuffled soup
                 .order = cli.get_int("order")})
          .angular({.nang = cli.get_int("nang")})
          .materials({.num_groups = cli.get_int("ng"),
                      .mat_opt = 1,  // denser material in the centre box
                      .scattering_ratio = 0.5})
          .source({.src_opt = 1})  // source in the centre box
          .iteration({.epsi = cli.get_double("epsi"),
                      .iitm = 100,
                      .oitm = 20,
                      .fixed_iterations = false})
          .execution({.num_threads = cli.get_int("threads")})
          .build();

  const snap::Input& input = problem.input();
  const core::Discretization& disc = problem.discretization();
  std::printf("UnSNAP quickstart: %d^3 twisted hex mesh, order %d, "
              "%d groups, %d angles/octant\n",
              nx, input.order, input.ng, input.nang);
  std::printf("  %d elements, %d nodes each; %d unique sweep schedules for "
              "%d directions\n",
              disc.num_elements(), disc.num_nodes(),
              disc.schedules().unique_count(),
              angular::kOctants * input.nang);

  const auto solver = problem.make_solver();
  const core::IterationResult result = solver->run();
  std::printf("\n%s after %d inners / %d outers "
              "(last inner change %.2e)\n",
              result.converged ? "Converged" : "NOT converged",
              result.inners, result.outers, result.final_inner_change);
  std::printf("  total %.3f s, %.3f s in assemble/solve sweeps\n",
              result.total_seconds, result.assemble_solve_seconds);

  // Per-group volume-average flux.
  std::printf("\ngroup   <phi> (volume average)\n");
  const std::vector<double> averages =
      api::group_volume_averages(disc, solver->scalar_flux());
  for (int g = 0; g < input.ng; ++g)
    std::printf("  %2d    %.6f\n", g, averages[static_cast<std::size_t>(g)]);

  const core::BalanceReport balance = solver->balance();
  std::printf("\nparticle balance:\n"
              "  source      %.6f\n  absorption  %.6f\n  leakage     %.6f\n"
              "  residual    %.2e (relative %.2e)\n",
              balance.source, balance.absorption, balance.leakage,
              balance.residual(), balance.relative());
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "quickstart",
    .summary = "minimal UnSNAP transport solve on a twisted hex mesh",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
