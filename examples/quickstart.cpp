// Quickstart: solve a small SNAP-style fixed-source transport problem on
// a twisted unstructured hex mesh and print the iteration history,
// per-group flux summary and the particle balance.
//
//   ./quickstart [--nx 8] [--order 1] [--ng 4] [--nang 6] ...
//
// This is the minimal end-to-end use of the public API: fill a
// snap::Input, construct a core::TransportSolver, run, inspect.

#include <cstdio>

#include "core/transport_solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace unsnap;

  Cli cli("quickstart", "minimal UnSNAP transport solve");
  cli.option("nx", "8", "elements per dimension");
  cli.option("order", "1", "finite element order (1..5)");
  cli.option("ng", "4", "energy groups");
  cli.option("nang", "6", "angles per octant");
  cli.option("twist", "0.001", "mesh twist in radians");
  cli.option("epsi", "1e-5", "convergence tolerance");
  cli.option("threads", "0", "OpenMP threads (0 = default)");
  if (!cli.parse(argc, argv)) return 0;

  snap::Input input;
  const int nx = cli.get_int("nx");
  input.dims = {nx, nx, nx};
  input.order = cli.get_int("order");
  input.ng = cli.get_int("ng");
  input.nang = cli.get_int("nang");
  input.twist = cli.get_double("twist");
  input.shuffle_seed = 42;       // store the brick as a shuffled soup
  input.mat_opt = 1;             // denser material in the centre box
  input.src_opt = 1;             // source in the centre box
  input.scattering_ratio = 0.5;
  input.epsi = cli.get_double("epsi");
  input.fixed_iterations = false;
  input.iitm = 100;
  input.oitm = 20;
  input.num_threads = cli.get_int("threads");

  std::printf("UnSNAP quickstart: %d^3 twisted hex mesh, order %d, "
              "%d groups, %d angles/octant\n",
              nx, input.order, input.ng, input.nang);

  core::TransportSolver solver(input);
  const core::Discretization& disc = solver.discretization();
  std::printf("  %d elements, %d nodes each; %d unique sweep schedules for "
              "%d directions\n",
              disc.num_elements(), disc.num_nodes(),
              disc.schedules().unique_count(),
              angular::kOctants * input.nang);

  const core::IterationResult result = solver.run();
  std::printf("\n%s after %d inners / %d outers "
              "(last inner change %.2e)\n",
              result.converged ? "Converged" : "NOT converged",
              result.inners, result.outers, result.final_inner_change);
  std::printf("  total %.3f s, %.3f s in assemble/solve sweeps\n",
              result.total_seconds, result.assemble_solve_seconds);

  // Per-group volume-average flux.
  std::printf("\ngroup   <phi> (volume average)\n");
  for (int g = 0; g < input.ng; ++g) {
    double integral = 0.0, volume = 0.0;
    for (int e = 0; e < disc.num_elements(); ++e) {
      const double* w = disc.integrals().node_weights(e);
      const double* ph = solver.scalar_flux().at(e, g);
      for (int i = 0; i < disc.num_nodes(); ++i) integral += w[i] * ph[i];
      volume += disc.integrals().volume(e);
    }
    std::printf("  %2d    %.6f\n", g, integral / volume);
  }

  const core::BalanceReport balance = solver.balance();
  std::printf("\nparticle balance:\n"
              "  source      %.6f\n  absorption  %.6f\n  leakage     %.6f\n"
              "  residual    %.2e (relative %.2e)\n",
              balance.source, balance.absorption, balance.leakage,
              balance.residual(), balance.relative());
  return 0;
}
