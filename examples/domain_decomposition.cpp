// Distributed-memory scenario: the same fixed-source problem solved on one
// domain and on a KBA-partitioned grid of simulated-MPI ranks under both
// halo-exchange disciplines — the paper's parallel block Jacobi schedule
// (§III-A-1, stale halos, convergence degrades with rank count) and the
// pipelined exchange (same-iteration halos staged through the rank-level
// dependency DAG, single-domain iteration counts). Verifies both gathered
// fluxes against the single-domain answer and prints the pipeline
// fill/drain diagnostics. The distributed drivers consume the legacy
// snap::Input deck, so this scenario also demonstrates the builder's
// to_input() adapter and the DecompositionSpec.

#include <cmath>
#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/report.hpp"
#include "api/scenario.hpp"
#include "comm/distributed.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "10", "elements per dimension");
  cli.option("px", "2", "rank grid x");
  cli.option("py", "2", "rank grid y");
  cli.option("ng", "2", "energy groups");
  cli.option("nang", "4", "angles per octant");
  cli.option("epsi", "1e-7", "convergence tolerance");
  cli.option("exchange", "both",
             "halo exchange to run: jacobi, pipelined or both");
}

double max_flux_diff(const core::TransportSolver& reference,
                     const std::vector<double>& global, int ng) {
  const auto& disc = reference.discretization();
  const int n = disc.num_nodes();
  double worst = 0.0;
  for (int e = 0; e < disc.num_elements(); ++e)
    for (int g = 0; g < ng; ++g) {
      const double* ref = reference.scalar_flux().at(e, g);
      const double* mine =
          global.data() + (static_cast<std::size_t>(e) * ng + g) * n;
      for (int i = 0; i < n; ++i)
        worst = std::max(worst, std::fabs(ref[i] - mine[i]));
    }
  return worst;
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  const std::string which = cli.get("exchange");
  if (which != "both") (void)snap::sweep_exchange_from_string(which);
  api::ProblemBuilder builder =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, nx}, .twist = 0.001, .shuffle_seed = 17})
          .angular({.nang = cli.get_int("nang")})
          .materials({.num_groups = cli.get_int("ng"),
                      .mat_opt = 1,
                      .scattering_ratio = 0.6})
          .source({.src_opt = 1})
          .iteration({.epsi = cli.get_double("epsi"),
                      .iitm = 500,
                      .oitm = 10,
                      .fixed_iterations = false})
          .execution({.scheme = snap::ConcurrencyScheme::Serial,
                      .num_threads = 1});

  const int px = cli.get_int("px"), py = cli.get_int("py");
  std::printf("Domain decomposition: %d^3 elements, %dx%d KBA ranks\n", nx,
              px, py);

  // Reference: one domain, plain sweeps, through the declarative API.
  const api::Problem problem = builder.build();
  const auto reference = problem.make_solver();
  const core::IterationResult ref_result = reference->run();
  std::printf("\nsingle domain : %3d inners / %d outers, %.3f s "
              "(serial sweeps)\n",
              ref_result.inners, ref_result.outers,
              ref_result.total_seconds);

  const int ng = cli.get_int("ng");
  for (const snap::SweepExchange exchange :
       {snap::SweepExchange::BlockJacobi, snap::SweepExchange::Pipelined}) {
    if (which != "both" && exchange != snap::sweep_exchange_from_string(which))
      continue;
    builder.decomposition({.px = px, .py = py, .exchange = exchange});
    comm::DistributedSweepSolver solver(builder.to_input(), px, py);
    const comm::DistributedSweepResult result = solver.run();
    std::printf("\n");
    api::print_decomposition_report(solver, result);
    std::printf("  max |phi_single - phi_distributed| = %.3e\n",
                max_flux_diff(*reference, solver.gather_scalar_flux(), ng));
  }

  std::printf(
      "\nReading: block Jacobi sweeps concurrently from iteration one but\n"
      "boundary data lags an iteration, so inners grow with the rank\n"
      "count; the pipelined exchange reproduces the single-domain inner\n"
      "count exactly (the sweep is an exact global L^-1 apply) and pays\n"
      "with pipeline fill/drain idle time instead — the trade-off the\n"
      "paper's global-schedule discussion (after Garrett) is about.\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "domain_decomposition",
    .summary = "block Jacobi vs pipelined sweeps over simulated-MPI ranks",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
