// Distributed-memory scenario: the same fixed-source problem solved on one
// domain and on a KBA-partitioned grid of simulated-MPI ranks with the
// paper's parallel block Jacobi schedule (§III-A-1). Shows the
// convergence-rate price of the decomposition and verifies the gathered
// flux against the single-domain answer. The block Jacobi driver consumes
// the legacy snap::Input deck, so this scenario also demonstrates the
// builder's to_input() adapter.

#include <cmath>
#include <cstdio>

#include "api/problem_builder.hpp"
#include "api/scenario.hpp"
#include "comm/block_jacobi.hpp"

namespace {

using namespace unsnap;

void declare_options(Cli& cli) {
  cli.option("nx", "10", "elements per dimension");
  cli.option("px", "2", "rank grid x");
  cli.option("py", "2", "rank grid y");
  cli.option("ng", "2", "energy groups");
  cli.option("nang", "4", "angles per octant");
  cli.option("epsi", "1e-7", "convergence tolerance");
}

int run(const Cli& cli) {
  const int nx = cli.get_int("nx");
  const api::ProblemBuilder builder =
      api::ProblemBuilder()
          .mesh({.dims = {nx, nx, nx}, .twist = 0.001, .shuffle_seed = 17})
          .angular({.nang = cli.get_int("nang")})
          .materials({.num_groups = cli.get_int("ng"),
                      .mat_opt = 1,
                      .scattering_ratio = 0.6})
          .source({.src_opt = 1})
          .iteration({.epsi = cli.get_double("epsi"),
                      .iitm = 500,
                      .oitm = 10,
                      .fixed_iterations = false})
          .execution({.scheme = snap::ConcurrencyScheme::Serial,
                      .num_threads = 1});
  const snap::Input input = builder.to_input();

  const int px = cli.get_int("px"), py = cli.get_int("py");
  std::printf("Domain decomposition: %d^3 elements, %dx%d KBA ranks\n", nx,
              px, py);

  // Reference: one domain, plain sweeps, through the declarative API.
  const api::Problem problem = builder.build();
  const auto reference = problem.make_solver();
  const core::IterationResult ref_result = reference->run();
  std::printf("\nsingle domain : %3d inners, %.3f s (serial sweeps)\n",
              ref_result.inners, ref_result.total_seconds);

  // Block Jacobi over px x py ranks (each rank is a thread).
  comm::BlockJacobiSolver bj(input, px, py);
  const comm::BlockJacobiResult bj_result = bj.run();
  std::printf("%dx%d ranks     : %3d inners, %.3f s (ranks sweep "
              "concurrently)\n",
              px, py, bj_result.inners, bj_result.total_seconds);

  // Compare the gathered flux with the reference.
  const std::vector<double> global = bj.gather_scalar_flux();
  const auto& disc = reference->discretization();
  const int n = disc.num_nodes();
  double worst = 0.0;
  for (int e = 0; e < disc.num_elements(); ++e)
    for (int g = 0; g < input.ng; ++g) {
      const double* ref = reference->scalar_flux().at(e, g);
      const double* mine =
          global.data() + (static_cast<std::size_t>(e) * input.ng + g) * n;
      for (int i = 0; i < n; ++i)
        worst = std::max(worst, std::fabs(ref[i] - mine[i]));
    }
  std::printf("\nmax |phi_single - phi_blockjacobi| = %.3e "
              "(both converged to epsi = %g)\n",
              worst, input.epsi);
  std::printf("convergence history (global max flux change per inner):\n");
  const auto& history = bj_result.inner_history;
  for (std::size_t i = 0; i < history.size();
       i += std::max<std::size_t>(1, history.size() / 10))
    std::printf("  inner %3zu: %.3e\n", i + 1, history[i]);
  std::printf(
      "\nReading: the block Jacobi runs more inner iterations than the\n"
      "single domain (boundary data lags one iteration) but every rank\n"
      "sweeps concurrently from the start — the trade the paper's global\n"
      "schedule makes for on-node parallelism.\n");
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "domain_decomposition",
    .summary = "block Jacobi over simulated-MPI ranks vs single domain",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
