// Streaming-duct scenario: a strongly absorbing block penetrated by a
// near-void duct along x, with a source at the duct mouth. Particles
// stream down the duct essentially unattenuated while the surrounding
// absorber kills them within a mean free path — the configuration where
// discrete ordinates shows its characteristic behaviour (and, with few
// angles, its ray effects). Prints the flux profile down the duct axis
// and through the absorber for comparison.

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/problem_builder.hpp"
#include "api/scenario.hpp"
#include "io/vtk_writer.hpp"

namespace {

using namespace unsnap;

snap::CrossSections duct_xs(int ng) {
  snap::CrossSections xs;
  xs.num_materials = 2;
  xs.ng = ng;
  const auto g_count = static_cast<std::size_t>(ng);
  xs.sigt.resize({2, g_count});
  xs.sigs.resize({2, g_count});
  xs.siga.resize({2, g_count});
  xs.slgg.resize({2, g_count, g_count}, 0.0);
  const double sigt[2] = {0.02, 5.0};   // duct void, absorber
  const double ratio[2] = {0.0, 0.05};  // nearly pure absorber
  for (int m = 0; m < 2; ++m)
    for (int g = 0; g < ng; ++g) {
      xs.sigt(m, g) = sigt[m];
      xs.sigs(m, g) = ratio[m] * sigt[m];
      xs.siga(m, g) = xs.sigt(m, g) - xs.sigs(m, g);
      xs.slgg(m, g, g) = xs.sigs(m, g);
    }
  return xs;
}

bool in_duct(const fem::Vec3& c) {
  return std::fabs(c[1] - 0.5) < 0.125 && std::fabs(c[2] - 0.5) < 0.125;
}

void declare_options(Cli& cli) {
  cli.option("n", "16", "elements along the duct (x)");
  cli.option("nang", "16", "angles per octant");
  cli.option("order", "1", "finite element order");
  cli.option("vtk", "duct.vtk", "VTK output file ('' to disable)");
}

int run(const Cli& cli) {
  const int n = cli.get_int("n");
  // Duct: |y-0.5|,|z-0.5| < 0.125 for the full x range. Source: the first
  // 12.5% of the duct length.
  const api::Problem problem =
      api::ProblemBuilder()
          .mesh({.dims = {n, n / 2, n / 2},
                 .extent = {2.0, 1.0, 1.0},
                 .twist = 0.0005,
                 .shuffle_seed = 3,
                 .order = cli.get_int("order")})
          .angular({.nang = cli.get_int("nang"),
                    .quadrature = angular::QuadratureKind::Product})
          .materials({.cross_sections = duct_xs(1),
                      .material_map =
                          [](const fem::Vec3& c) { return in_duct(c) ? 0 : 1; }})
          .source({.profile =
                       [](const fem::Vec3& c, int) {
                         return in_duct(c) && c[0] < 0.25 ? 1.0 : 0.0;
                       }})
          .iteration({.epsi = 1e-6,
                      .iitm = 100,
                      .oitm = 2,
                      .fixed_iterations = false})
          .build();

  const core::Discretization& disc = problem.discretization();
  const auto solver = problem.make_solver();
  const core::IterationResult result = solver->run();
  const snap::Input& input = problem.input();
  std::printf("Duct streaming: %dx%dx%d elements, %d angles/octant, "
              "converged=%s in %d inners\n",
              input.dims[0], input.dims[1], input.dims[2], input.nang,
              result.converged ? "yes" : "no", result.inners);

  // Flux profile vs x, on the duct axis and inside the absorber.
  const int bins = input.dims[0];
  std::vector<double> duct(bins, 0.0), duct_vol(bins, 0.0);
  std::vector<double> wall(bins, 0.0), wall_vol(bins, 0.0);
  for (int e = 0; e < disc.num_elements(); ++e) {
    const auto c = disc.mesh().centroid(e);
    const int bin = std::min(bins - 1, static_cast<int>(c[0] / 2.0 * bins));
    const bool deep_wall = std::fabs(c[1] - 0.5) > 0.3;
    if (!in_duct(c) && !deep_wall) continue;
    const double* w = disc.integrals().node_weights(e);
    const double* ph = solver->scalar_flux().at(e, 0);
    double integral = 0.0;
    for (int i = 0; i < disc.num_nodes(); ++i) integral += w[i] * ph[i];
    if (in_duct(c)) {
      duct[bin] += integral;
      duct_vol[bin] += disc.integrals().volume(e);
    } else {
      wall[bin] += integral;
      wall_vol[bin] += disc.integrals().volume(e);
    }
  }

  std::printf("\n   x      phi(duct axis)   phi(absorber)    ratio\n");
  for (int b = 0; b < bins; b += 2) {
    const double x = (b + 0.5) * 2.0 / bins;
    const double fd = duct[b] / duct_vol[b];
    const double fw = wall[b] / wall_vol[b];
    std::printf("  %.3f   %.6e    %.6e   %8.1fx\n", x, fd, fw, fd / fw);
  }
  std::printf("\nReading: flux persists down the void duct but collapses "
              "inside the absorber\n(5 mfp per 1.0 of depth).\n");

  if (!cli.get("vtk").empty()) {
    std::vector<double> mat_field(problem.data().material.begin(),
                                  problem.data().material.end());
    io::write_vtk(cli.get("vtk"), disc.mesh(),
                  {{"flux",
                    io::cell_average_flux(disc, solver->scalar_flux(), 0)},
                   {"material", mat_field}});
    std::printf("wrote %s\n", cli.get("vtk").c_str());
  }
  return 0;
}

const api::ScenarioRegistrar registrar{{
    .name = "duct_streaming",
    .summary = "void duct through an absorber block (streaming/ray effects)",
    .declare_options = declare_options,
    .run = run,
}};

}  // namespace
