// Streaming-duct example: a strongly absorbing block penetrated by a
// near-void duct along x, with a source at the duct mouth. Particles
// stream down the duct essentially unattenuated while the surrounding
// absorber kills them within a mean free path — the configuration where
// discrete ordinates shows its characteristic behaviour (and, with few
// angles, its ray effects). Prints the flux profile down the duct axis
// and through the absorber for comparison.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/transport_solver.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"

using namespace unsnap;

namespace {

snap::CrossSections duct_xs(int ng) {
  snap::CrossSections xs;
  xs.num_materials = 2;
  xs.ng = ng;
  const auto g_count = static_cast<std::size_t>(ng);
  xs.sigt.resize({2, g_count});
  xs.sigs.resize({2, g_count});
  xs.siga.resize({2, g_count});
  xs.slgg.resize({2, g_count, g_count}, 0.0);
  const double sigt[2] = {0.02, 5.0};   // duct void, absorber
  const double ratio[2] = {0.0, 0.05};  // nearly pure absorber
  for (int m = 0; m < 2; ++m)
    for (int g = 0; g < ng; ++g) {
      xs.sigt(m, g) = sigt[m];
      xs.sigs(m, g) = ratio[m] * sigt[m];
      xs.siga(m, g) = xs.sigt(m, g) - xs.sigs(m, g);
      xs.slgg(m, g, g) = xs.sigs(m, g);
    }
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("duct_streaming", "void duct through an absorber block");
  cli.option("n", "16", "elements along the duct (x)");
  cli.option("nang", "16", "angles per octant");
  cli.option("order", "1", "finite element order");
  cli.option("vtk", "duct.vtk", "VTK output file ('' to disable)");
  if (!cli.parse(argc, argv)) return 0;

  snap::Input input;
  const int n = cli.get_int("n");
  input.dims = {n, n / 2, n / 2};
  input.extent = {2.0, 1.0, 1.0};
  input.order = cli.get_int("order");
  input.nang = cli.get_int("nang");
  input.quadrature = angular::QuadratureKind::Product;
  input.ng = 1;
  input.twist = 0.0005;
  input.shuffle_seed = 3;
  input.fixed_iterations = false;
  input.epsi = 1e-6;
  input.iitm = 100;
  input.oitm = 2;

  const auto disc = std::make_shared<const core::Discretization>(input);

  // Duct: |y-0.5|,|z-0.5| < 0.125 for the full x range. Source: the first
  // 12.5% of the duct length.
  std::vector<int> material(static_cast<std::size_t>(disc->num_elements()));
  NDArray<double, 2> qext(
      {static_cast<std::size_t>(disc->num_elements()), 1}, 0.0);
  for (int e = 0; e < disc->num_elements(); ++e) {
    const auto c = disc->mesh().centroid(e);
    const bool in_duct =
        std::fabs(c[1] - 0.5) < 0.125 && std::fabs(c[2] - 0.5) < 0.125;
    material[e] = in_duct ? 0 : 1;
    if (in_duct && c[0] < 0.25) qext(e, 0) = 1.0;
  }

  core::TransportSolver solver(disc, input,
                               core::ProblemData(*disc, duct_xs(1),
                                                 material, qext));
  const core::IterationResult result = solver.run();
  std::printf("Duct streaming: %dx%dx%d elements, %d angles/octant, "
              "converged=%s in %d inners\n",
              input.dims[0], input.dims[1], input.dims[2], input.nang,
              result.converged ? "yes" : "no", result.inners);

  // Flux profile vs x, on the duct axis and inside the absorber.
  const int bins = input.dims[0];
  std::vector<double> duct(bins, 0.0), duct_vol(bins, 0.0);
  std::vector<double> wall(bins, 0.0), wall_vol(bins, 0.0);
  for (int e = 0; e < disc->num_elements(); ++e) {
    const auto c = disc->mesh().centroid(e);
    const int bin = std::min(bins - 1, static_cast<int>(c[0] / 2.0 * bins));
    const bool in_duct =
        std::fabs(c[1] - 0.5) < 0.125 && std::fabs(c[2] - 0.5) < 0.125;
    const bool deep_wall = std::fabs(c[1] - 0.5) > 0.3;
    if (!in_duct && !deep_wall) continue;
    const double* w = disc->integrals().node_weights(e);
    const double* ph = solver.scalar_flux().at(e, 0);
    double integral = 0.0;
    for (int i = 0; i < disc->num_nodes(); ++i) integral += w[i] * ph[i];
    if (in_duct) {
      duct[bin] += integral;
      duct_vol[bin] += disc->integrals().volume(e);
    } else {
      wall[bin] += integral;
      wall_vol[bin] += disc->integrals().volume(e);
    }
  }

  std::printf("\n   x      phi(duct axis)   phi(absorber)    ratio\n");
  for (int b = 0; b < bins; b += 2) {
    const double x = (b + 0.5) * 2.0 / bins;
    const double fd = duct[b] / duct_vol[b];
    const double fw = wall[b] / wall_vol[b];
    std::printf("  %.3f   %.6e    %.6e   %8.1fx\n", x, fd, fw, fd / fw);
  }
  std::printf("\nReading: flux persists down the void duct but collapses "
              "inside the absorber\n(5 mfp per 1.0 of depth).\n");

  if (!cli.get("vtk").empty()) {
    std::vector<double> mat_field(material.begin(), material.end());
    io::write_vtk(cli.get("vtk"), disc->mesh(),
                  {{"flux",
                    io::cell_average_flux(*disc, solver.scalar_flux(), 0)},
                   {"material", mat_field}});
    std::printf("wrote %s\n", cli.get("vtk").c_str());
  }
  return 0;
}
